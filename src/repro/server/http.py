"""The stdlib HTTP face of the query service.

A ``ThreadingHTTPServer`` front end over
:class:`~repro.server.service.QueryService`: handler threads do only
protocol work — parse, authenticate, admit, then either return JSON
or pump NDJSON frames from a stream task's buffer to the socket —
while every sample is drawn on the scheduler's single engine thread.

:data:`ROUTES` is the canonical route table.  ``docs/service.md``
documents exactly these routes, and ``tests/test_server.py`` fails if
either side drifts.

Streaming responses use ``Content-Type: application/x-ndjson`` with
connection-close framing: one JSON object per line, terminated by an
``end`` or ``error`` frame (see :mod:`repro.server.protocol`).  A
client that stops reading fills the per-stream buffer and the
scheduler parks the stream (backpressure) — and reaps it as abandoned
past ``abandon_seconds``; a client that disconnects outright is
counted in ``storm.server.client_disconnects`` and its stream is
cancelled, never logged as a handler traceback.

Requests may carry an ``X-Storm-Deadline: <seconds>`` header bounding
the stream's whole life (queue wait included); past it the stream
fails with a terminal ``error`` frame, code ``deadline_exceeded``.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import render_prometheus
from repro.server.protocol import ApiError, encode_frame, parse_body
from repro.server.service import QueryService

__all__ = ["ROUTES", "StormServer", "match_route"]

#: (method, path template, summary) — the documented API surface.
ROUTES = [
    ("GET", "/health",
     "liveness, drain state and stream depth (503 while draining)"),
    ("GET", "/metrics",
     "Prometheus 0.0.4 text metrics (storm.server.* per tenant)"),
    ("GET", "/metrics.json",
     "metrics registry snapshot plus sliding-window view"),
    ("GET", "/v1/datasets",
     "queryable datasets with sizes and sampler suites"),
    ("POST", "/v1/query",
     "run one query through the scheduler to completion; JSON result"),
    ("POST", "/v1/stream",
     "run one query; progressive NDJSON frames until end/error"),
    ("POST", "/v1/sessions",
     "create a named session for the authenticated tenant"),
    ("GET", "/v1/sessions",
     "list the caller's sessions"),
    ("GET", "/v1/sessions/{session}",
     "inspect one session and its streams"),
    ("DELETE", "/v1/sessions/{session}",
     "close a session, cancelling its live streams"),
    ("POST", "/v1/sessions/{session}/streams",
     "launch a detached stream; frames accumulate server-side"),
    ("GET", "/v1/sessions/{session}/streams/{stream}",
     "poll a detached stream's frames from ?from=N (resume point)"),
    ("DELETE", "/v1/sessions/{session}/streams/{stream}",
     "cancel a detached stream"),
]


def match_route(method: str, path: str
                ) -> "tuple[str, dict[str, str]] | None":
    """Resolve a request against :data:`ROUTES`.

    Returns ``(template, params)`` for the matching route, a
    ``("405", ...)`` marker when only the method mismatches, or None.
    """
    segments = [s for s in path.split("/") if s]
    path_matched = False
    for route_method, template, _ in ROUTES:
        t_segments = [s for s in template.split("/") if s]
        if len(t_segments) != len(segments):
            continue
        params: dict[str, str] = {}
        ok = True
        for t_seg, seg in zip(t_segments, segments):
            if t_seg.startswith("{") and t_seg.endswith("}"):
                params[t_seg[1:-1]] = seg
            elif t_seg != seg:
                ok = False
                break
        if not ok:
            continue
        path_matched = True
        if route_method == method:
            return template, params
    if path_matched:
        return "405", {}
    return None


class _Handler(BaseHTTPRequestHandler):
    """One request; all shared state lives on ``self.server``."""

    server_version = "storm-server/1.0"

    # Server-attached: server.service (QueryService)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        service: QueryService = self.server.service
        path = self.path.split("?", 1)[0]
        matched = match_route(method, path)
        route = matched[0] if matched else "unmatched"
        tenant = ""
        code = 500
        tracer = service.obs.tracer
        span = tracer.begin("http_request", route=route,
                            method=method)
        try:
            if matched is None:
                code = self._send_error(ApiError(
                    404, "not_found", f"no route {method} {path}"))
                return
            if matched[0] == "405":
                code = self._send_error(ApiError(
                    405, "bad_request",
                    f"method {method} not allowed on {path}"))
                return
            template, params = matched
            try:
                tenant = self._tenant(service, template)
                span.set("tenant", tenant)
                code = self._handle(service, method, template,
                                    params, tenant)
            except ApiError as exc:
                code = self._send_error(exc)
        except (BrokenPipeError, ConnectionResetError):
            code = 499  # client went away mid-response
        finally:
            span.set("code", code)
            tracer.end(span)
            registry = service.obs.registry
            if registry.enabled:
                registry.counter("storm.server.requests",
                                 route=route, code=code,
                                 tenant=tenant).inc()
                registry.histogram(
                    "storm.server.latency_seconds",
                    route=route,
                    tenant=tenant).observe(span.duration)

    def _tenant(self, service: QueryService, template: str) -> str:
        """Authenticate; ops routes stay token-free."""
        if template in ("/health", "/metrics", "/metrics.json"):
            return ""
        token = None
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            token = auth[len("Bearer "):].strip()
        if token is None:
            token = self.headers.get("X-Storm-Token")
        hint = self.headers.get("X-Storm-Tenant")
        return service.authenticate(token, hint)

    def _handle(self, service: QueryService, method: str,
                template: str, params: dict[str, str],
                tenant: str) -> int:
        if template == "/health":
            doc = service.health_doc()
            return self._send_json(
                503 if doc["status"] != "ok" else 200, doc)
        if template == "/metrics":
            body = render_prometheus(service.obs.registry).encode()
            return self._send_bytes(
                200, body, "text/plain; version=0.0.4; charset=utf-8")
        if template == "/metrics.json":
            registry = service.obs.registry
            return self._send_json(200, {
                "snapshot": registry.snapshot(),
                "window": registry.window_snapshot()})
        if template == "/v1/datasets":
            return self._send_json(200, service.datasets_doc())
        if template == "/v1/query":
            body = parse_body(self._read_body())
            return self._send_json(
                200, service.run_query(tenant, body,
                                       deadline=self._deadline()))
        if template == "/v1/stream":
            body = parse_body(self._read_body())
            task = service.submit_stream(tenant, body,
                                         deadline=self._deadline())
            return self._stream_frames(task)
        if template == "/v1/sessions" and method == "POST":
            body = parse_body(self._read_body())
            doc = service.create_session(
                tenant, str(body.get("name", "")))
            return self._send_json(201, doc)
        if template == "/v1/sessions":
            return self._send_json(200, service.list_sessions(tenant))
        if template == "/v1/sessions/{session}" and method == "GET":
            return self._send_json(200, service.session_doc(
                tenant, params["session"]))
        if template == "/v1/sessions/{session}":
            return self._send_json(200, service.close_session(
                tenant, params["session"]))
        if template == "/v1/sessions/{session}/streams":
            body = parse_body(self._read_body())
            task = service.submit_stream(
                tenant, body, detached=True,
                session_id=params["session"],
                deadline=self._deadline())
            return self._send_json(202, {
                "stream": task.task_id,
                "session": params["session"],
                "state": task.state})
        if template == "/v1/sessions/{session}/streams/{stream}" \
                and method == "GET":
            task = service.get_task(tenant, params["session"],
                                    params["stream"])
            start = self._query_int("from", 0)
            frames, next_index, state = task.frames_since(start)
            return self._send_json(200, {
                "stream": task.task_id, "state": state,
                "from": start, "next": next_index,
                "frames": frames})
        if template == "/v1/sessions/{session}/streams/{stream}":
            return self._send_json(200, service.cancel_task(
                tenant, params["session"], params["stream"]))
        raise ApiError(404, "not_found",
                       f"no route {method} {template}")

    # -- request helpers -------------------------------------------------

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            return b""
        return self.rfile.read(length)

    def _deadline(self) -> float | None:
        """Parse ``X-Storm-Deadline: <seconds>`` (400 on garbage)."""
        raw = self.headers.get("X-Storm-Deadline")
        if raw is None:
            return None
        try:
            deadline = float(raw)
        except ValueError:
            raise ApiError(400, "bad_request",
                           "X-Storm-Deadline must be a number of "
                           f"seconds, got {raw!r}")
        if deadline <= 0:
            raise ApiError(400, "bad_request",
                           "X-Storm-Deadline must be > 0 seconds, "
                           f"got {raw!r}")
        return deadline

    def _query_int(self, key: str, default: int) -> int:
        query = ""
        if "?" in self.path:
            query = self.path.split("?", 1)[1]
        for pair in query.split("&"):
            if pair.startswith(key + "="):
                try:
                    return int(pair[len(key) + 1:])
                except ValueError:
                    raise ApiError(400, "bad_request",
                                   f"?{key}= must be an integer")
        return default

    # -- response helpers ------------------------------------------------

    def _send_json(self, code: int, doc: dict,
                   retry_after: float | None = None) -> int:
        body = (json.dumps(doc, sort_keys=True, default=str)
                + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After",
                             str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(body)
        return code

    def _send_bytes(self, code: int, body: bytes, ctype: str) -> int:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return code

    def _send_error(self, exc: ApiError) -> int:
        return self._send_json(exc.status, exc.to_doc(),
                               retry_after=exc.retry_after)

    def _stream_frames(self, task) -> int:
        """Pump NDJSON frames to the socket until the terminal one."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("X-Storm-Stream", task.task_id)
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            while True:
                frame = task.pop(timeout=1.0)
                if frame is None:
                    if task.terminal and task.pending() == 0:
                        return 200
                    continue
                self.wfile.write(encode_frame(frame))
                self.wfile.flush()
                if frame.get("frame") in ("end", "error"):
                    return 200
        except (BrokenPipeError, ConnectionResetError):
            # The client vanished mid-stream: cancel the task so the
            # engine reclaims its quanta and the tenant its quota
            # slot, count it, and swallow — a dead socket is routine
            # operation, not a handler traceback.
            task.cancel("client disconnected")
            registry = self.server.service.obs.registry
            if registry.enabled:
                registry.counter("storm.server.client_disconnects",
                                 tenant=task.tenant).inc()
            return 499

    def log_message(self, fmt: str, *args) -> None:
        pass  # storm.server.requests is the access log


class _StormHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats vanished clients as routine.

    ``BaseHTTPRequestHandler`` flushes the response in ``finish()``
    *after* the handler returns; a client that disconnected makes
    that flush raise, and stock socketserver prints a full traceback
    per dead socket.  Those are counted, not logged.
    """

    daemon_threads = True
    service: QueryService | None = None

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError,
                            TimeoutError)):
            service = self.service
            if service is not None:
                registry = service.obs.registry
                if registry.enabled:
                    registry.counter(
                        "storm.server.client_disconnects",
                        tenant="").inc()
            return
        super().handle_error(request, client_address)


class StormServer:
    """The service bound to a socket, on a background thread.

    ``port=0`` picks an ephemeral port (tests/bench); ``start()``
    returns after the socket is bound, so ``server.port`` is real.
    """

    def __init__(self, service: QueryService, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._httpd is not None

    def start(self) -> "StormServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        httpd = _StormHTTPServer((self.host, self.port), _Handler)
        httpd.service = self.service
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="storm-server",
            daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> bool:
        """Graceful shutdown: drain in-flight streams, then unbind.

        Returns True when every stream finished inside the service's
        drain budget.
        """
        drained = self.service.shutdown(drain=drain)
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=10.0)
        return drained

    def __enter__(self) -> "StormServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
