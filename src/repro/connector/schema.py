"""Schema discovery: infer field types and the spatio-temporal mapping.

Given sampled rows, :class:`SchemaDiscovery` infers a type per field (a
field is the *widest* type consistent with all its sampled values:
int ⊂ float ⊂ str, etc.) and then detects which fields carry longitude,
latitude and time — by name first (``lon``, ``longitude``, ``lng``...),
falling back to value-range heuristics (a numeric field within ±180 whose
companion lies within ±90).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.connector.parsers import looks_like
from repro.errors import SchemaError

__all__ = ["FieldType", "Schema", "FieldMapping", "SchemaDiscovery"]


class FieldType(str, enum.Enum):
    """Field types schema discovery can infer."""
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    TIMESTAMP = "timestamp"
    STR = "str"

    def __str__(self) -> str:  # catalog-friendly
        return self.value


# Widening lattice: merging two observed types picks the widest.
_WIDEN: dict[frozenset[str], str] = {
    frozenset({"int", "float"}): "float",
    frozenset({"int", "timestamp"}): "float",
    frozenset({"float", "timestamp"}): "float",
    frozenset({"int", "bool"}): "int",
}


def _merge_types(a: str | None, b: str) -> str:
    if a is None or a == b:
        return b
    return _WIDEN.get(frozenset({a, b}), "str")


@dataclass(frozen=True, slots=True)
class Schema:
    """Discovered field types."""

    fields: tuple[tuple[str, FieldType], ...]

    def as_dict(self) -> dict[str, FieldType]:
        """Field name -> type mapping."""
        return dict(self.fields)

    def type_of(self, field: str) -> FieldType:
        """Type of one field (SchemaError when unknown)."""
        for name, ftype in self.fields:
            if name == field:
                return ftype
        raise SchemaError(f"no field named {field!r}")

    def names(self) -> list[str]:
        """Field names in discovery order."""
        return [name for name, _ in self.fields]

    def numeric_fields(self) -> list[str]:
        """Names of int/float fields (lon/lat candidates)."""
        return [name for name, ftype in self.fields
                if ftype in (FieldType.INT, FieldType.FLOAT)]


@dataclass(frozen=True, slots=True)
class FieldMapping:
    """Which fields carry the spatio-temporal key."""

    lon_field: str
    lat_field: str
    time_field: str | None = None


_LON_NAMES = ("lon", "longitude", "lng", "long", "x", "lon_deg")
_LAT_NAMES = ("lat", "latitude", "y", "lat_deg")
_TIME_NAMES = ("t", "time", "timestamp", "ts", "datetime", "date",
               "created_at", "epoch")


class SchemaDiscovery:
    """Infers a :class:`Schema` and :class:`FieldMapping` from samples."""

    def __init__(self, sample_size: int = 200):
        if sample_size < 1:
            raise SchemaError("sample_size must be >= 1")
        self.sample_size = sample_size

    def discover(self, rows: Iterable[Mapping[str, Any]]) -> Schema:
        """Infer a Schema from sampled rows (widest consistent types)."""
        observed: dict[str, str | None] = {}
        order: list[str] = []
        seen = 0
        for row in rows:
            for key, value in row.items():
                if key not in observed:
                    observed[key] = None
                    order.append(key)
                if value is None:
                    continue
                observed[key] = _merge_types(observed[key],
                                             self._classify(value))
            seen += 1
            if seen >= self.sample_size:
                break
        if seen == 0:
            raise SchemaError("cannot discover a schema from zero rows")
        fields = tuple((name, FieldType(observed[name] or "str"))
                       for name in order)
        return Schema(fields)

    @staticmethod
    def _classify(value: Any) -> str:
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "float"
        if isinstance(value, str):
            return looks_like(value)
        return "str"

    # -- spatio-temporal mapping --------------------------------------------

    def detect_mapping(self, schema: Schema,
                       rows: list[Mapping[str, Any]] | None = None
                       ) -> FieldMapping:
        """Find the lon/lat/time fields by name, else by value ranges."""
        names = {name.lower(): name for name in schema.names()}
        lon = next((names[n] for n in _LON_NAMES if n in names), None)
        lat = next((names[n] for n in _LAT_NAMES if n in names), None)
        time_field = next(
            (names[n] for n in _TIME_NAMES if n in names
             and schema.type_of(names[n]) in (FieldType.TIMESTAMP,
                                              FieldType.FLOAT,
                                              FieldType.INT)), None)
        if lon is None or lat is None:
            if rows:
                lon, lat = self._detect_by_range(schema, rows, lon, lat)
        if lon is None or lat is None:
            raise SchemaError(
                "could not detect longitude/latitude fields; pass an "
                "explicit FieldMapping")
        return FieldMapping(lon_field=lon, lat_field=lat,
                            time_field=time_field)

    def _detect_by_range(self, schema: Schema,
                         rows: list[Mapping[str, Any]],
                         lon: str | None, lat: str | None
                         ) -> tuple[str | None, str | None]:
        """Numeric fields whose values fit geographic ranges."""
        candidates: dict[str, tuple[float, float]] = {}
        for field in schema.numeric_fields():
            values = []
            for row in rows:
                v = row.get(field)
                try:
                    if v is not None:
                        values.append(float(v))
                except (TypeError, ValueError):
                    break
            if values:
                candidates[field] = (min(values), max(values))
        if lat is None:
            lat = next((f for f, (lo, hi) in candidates.items()
                        if f != lon and -90.0 <= lo and hi <= 90.0
                        and hi - lo > 0), None)
        if lon is None:
            lon = next((f for f, (lo, hi) in candidates.items()
                        if f != lat and -180.0 <= lo and hi <= 180.0
                        and hi - lo > 0), None)
        return lon, lat
