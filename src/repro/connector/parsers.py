"""Typed value parsing for stringly-typed sources (the data parser).

CSV files and spreadsheets deliver everything as strings; the parser turns
them into ints, floats, booleans and epoch timestamps.  Timestamp parsing
accepts numeric epochs and the common ISO / US date formats the demo's
import walkthrough needs.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.errors import SchemaError

__all__ = ["parse_bool", "parse_timestamp", "coerce", "looks_like"]

_TRUE = {"true", "t", "yes", "y", "1"}
_FALSE = {"false", "f", "no", "n", "0"}

_DATE_FORMATS = (
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%m/%d/%Y %H:%M:%S",
    "%m/%d/%Y",
)


def parse_bool(text: str) -> bool:
    """Parse common textual booleans (yes/no, t/f, 0/1, ...)."""
    lowered = text.strip().lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise SchemaError(f"not a boolean: {text!r}")


def parse_timestamp(value: Any) -> float:
    """Epoch seconds from a numeric epoch or a formatted date string."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    text = str(value).strip()
    if not text:
        raise SchemaError("empty timestamp")
    try:
        return float(text)
    except ValueError:
        pass
    iso = text.replace("Z", "+00:00")
    try:
        return _dt.datetime.fromisoformat(iso).timestamp()
    except ValueError:
        pass
    for fmt in _DATE_FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt).timestamp()
        except ValueError:
            continue
    raise SchemaError(f"unparseable timestamp: {text!r}")


def looks_like(text: str) -> str:
    """Classify a raw string: 'int', 'float', 'bool', 'timestamp' or
    'str'.  Used by schema discovery on sampled rows."""
    stripped = text.strip()
    if not stripped:
        return "str"
    try:
        int(stripped)
        return "int"
    except ValueError:
        pass
    try:
        float(stripped)
        return "float"
    except ValueError:
        pass
    if stripped.lower() in _TRUE | _FALSE:
        return "bool"
    try:
        parse_timestamp(stripped)
        return "timestamp"
    except SchemaError:
        return "str"


def coerce(value: Any, type_name: str) -> Any:
    """Coerce a raw value to the discovered field type."""
    if value is None:
        return None
    if type_name == "int":
        if isinstance(value, bool):
            return int(value)
        return int(str(value).strip())
    if type_name == "float":
        return float(str(value).strip())
    if type_name == "bool":
        if isinstance(value, bool):
            return value
        return parse_bool(str(value))
    if type_name == "timestamp":
        return parse_timestamp(value)
    if type_name == "str":
        return value if isinstance(value, str) else str(value)
    raise SchemaError(f"unknown field type {type_name!r}")
