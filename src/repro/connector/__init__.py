"""Data connector: import or index external data sources.

The paper's connector "uses schema discovery and data parser for a number
of data sources ... in order to import and index a data source from a
specified storage engine", supporting spreadsheets, text files, MySQL,
Cassandra and MongoDB, with the option to *import* into STORM's storage
engine or merely *index* in place.

This package reproduces all of it:

``schema``
    Field type inference over sampled rows and automatic detection of the
    longitude/latitude/time fields.
``parsers``
    Typed value parsing (numbers, booleans, many timestamp formats).
``sources``
    One :class:`~repro.connector.base.DataSource` per storage engine:
    CSV/spreadsheet files, JSON-lines files, SQL databases (sqlite3,
    standing in for MySQL), a partitioned key-value store (standing in
    for Cassandra), and the document store (MongoDB).
``importer``
    Drives the pipeline: discover schema → map fields → parse rows →
    build records → create the indexed dataset (copying documents into
    the store in ``import`` mode, leaving them at the source in ``index``
    mode) → register in the catalog.
"""

from repro.connector.base import DataSource
from repro.connector.importer import Importer, ImportReport
from repro.connector.schema import (FieldMapping, FieldType, Schema,
                                    SchemaDiscovery)
from repro.connector.sources import (CSVSource, DocumentStoreSource,
                                     JSONLinesSource, KeyValueSource,
                                     KeyValueStore, SQLSource)

__all__ = [
    "CSVSource",
    "DataSource",
    "DocumentStoreSource",
    "FieldMapping",
    "FieldType",
    "Importer",
    "ImportReport",
    "JSONLinesSource",
    "KeyValueSource",
    "KeyValueStore",
    "SQLSource",
    "Schema",
    "SchemaDiscovery",
]
