"""Connector backends: one DataSource per supported storage engine.

The paper demos importing from "excel spreadsheets, text files, Cassandra,
MySQL, and MongoDB".  The offline stand-ins:

* :class:`CSVSource` — CSV/TSV files (the spreadsheet & text-file path);
* :class:`JSONLinesSource` — JSON-lines text files;
* :class:`SQLSource` — any DB-API database; sqlite3 here, exercising the
  same cursor/scan path a MySQL driver would;
* :class:`KeyValueStore`/:class:`KeyValueSource` — a partitioned wide-row
  key-value store modelled after Cassandra's data layout;
* :class:`DocumentStoreSource` — STORM's own MongoDB-like document store.
"""

from __future__ import annotations

import csv
import json
import sqlite3
from typing import Any, Iterator, Mapping

from repro.connector.base import DataSource
from repro.errors import ConnectorError
from repro.storage.document_store import DocumentStore

__all__ = ["CSVSource", "JSONLinesSource", "SQLSource", "KeyValueStore",
           "KeyValueSource", "DocumentStoreSource"]


class CSVSource(DataSource):
    """CSV/TSV file with a header row (spreadsheet export)."""

    def __init__(self, path: str, delimiter: str = ","):
        self.path = path
        self.delimiter = delimiter

    @property
    def description(self) -> str:
        return f"csv:{self.path}"

    def scan(self) -> Iterator[Mapping[str, Any]]:
        try:
            with open(self.path, newline="") as f:
                reader = csv.DictReader(f, delimiter=self.delimiter)
                if reader.fieldnames is None:
                    raise ConnectorError(
                        f"{self.path}: missing header row")
                for row in reader:
                    yield row
        except OSError as exc:
            raise ConnectorError(f"cannot read {self.path}: {exc}") \
                from exc


class JSONLinesSource(DataSource):
    """One JSON object per line."""

    def __init__(self, path: str):
        self.path = path

    @property
    def description(self) -> str:
        return f"jsonl:{self.path}"

    def scan(self) -> Iterator[Mapping[str, Any]]:
        try:
            with open(self.path) as f:
                for lineno, line in enumerate(f, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ConnectorError(
                            f"{self.path}:{lineno}: bad JSON: {exc}") \
                            from exc
                    if not isinstance(doc, dict):
                        raise ConnectorError(
                            f"{self.path}:{lineno}: expected an object")
                    yield doc
        except OSError as exc:
            raise ConnectorError(f"cannot read {self.path}: {exc}") \
                from exc


class SQLSource(DataSource):
    """A table or query in a DB-API database (sqlite3 ≈ MySQL here)."""

    def __init__(self, database: str, table: str | None = None,
                 query: str | None = None):
        if (table is None) == (query is None):
            raise ConnectorError("provide exactly one of table or query")
        if table is not None and not table.replace("_", "").isalnum():
            raise ConnectorError(f"suspicious table name {table!r}")
        self.database = database
        self.table = table
        self.query = query if query is not None \
            else f"SELECT * FROM {table}"  # noqa: S608 (validated above)

    @property
    def description(self) -> str:
        what = self.table if self.table else "query"
        return f"sql:{self.database}/{what}"

    def scan(self) -> Iterator[Mapping[str, Any]]:
        try:
            conn = sqlite3.connect(self.database)
        except sqlite3.Error as exc:
            raise ConnectorError(
                f"cannot open database {self.database}: {exc}") from exc
        try:
            conn.row_factory = sqlite3.Row
            try:
                cursor = conn.execute(self.query)
            except sqlite3.Error as exc:
                raise ConnectorError(
                    f"query failed on {self.database}: {exc}") from exc
            for row in cursor:
                yield dict(row)
        finally:
            conn.close()

    def count(self) -> int:
        if self.table is None:
            return super().count()
        conn = sqlite3.connect(self.database)
        try:
            (n,) = conn.execute(
                f"SELECT COUNT(*) FROM {self.table}").fetchone()  # noqa: S608
            return int(n)
        except sqlite3.Error as exc:
            raise ConnectorError(str(exc)) from exc
        finally:
            conn.close()


class KeyValueStore:
    """A tiny partitioned wide-row store (the Cassandra stand-in).

    Rows live under (partition_key, row_key); each row is a column map.
    Partitioning is by hash of the partition key across virtual nodes,
    like Cassandra's ring.
    """

    def __init__(self, partitions: int = 8):
        if partitions < 1:
            raise ConnectorError("need at least one partition")
        self.partitions = partitions
        self._ring: list[dict[tuple[str, str], dict[str, Any]]] = [
            {} for _ in range(partitions)]

    def _shard(self, partition_key: str) -> dict:
        return self._ring[hash(partition_key) % self.partitions]

    def put(self, partition_key: str, row_key: str,
            columns: Mapping[str, Any]) -> None:
        """Insert or replace one row's column map."""
        self._shard(partition_key)[(partition_key, row_key)] = \
            dict(columns)

    def get(self, partition_key: str, row_key: str
            ) -> dict[str, Any] | None:
        """One row's columns, or None when absent."""
        row = self._shard(partition_key).get((partition_key, row_key))
        return dict(row) if row is not None else None

    def delete(self, partition_key: str, row_key: str) -> bool:
        """Remove a row; returns whether it existed."""
        return self._shard(partition_key).pop(
            (partition_key, row_key), None) is not None

    def scan_all(self) -> Iterator[tuple[str, str, dict[str, Any]]]:
        """Iterate every (partition_key, row_key, columns) triple."""
        for shard in self._ring:
            for (pk, rk), columns in shard.items():
                yield pk, rk, dict(columns)

    def __len__(self) -> int:
        return sum(len(s) for s in self._ring)


class KeyValueSource(DataSource):
    """Scan a :class:`KeyValueStore`, exposing keys as columns."""

    def __init__(self, store: KeyValueStore, name: str = "kv"):
        self.store = store
        self.name = name

    @property
    def description(self) -> str:
        return f"cassandra:{self.name}"

    def scan(self) -> Iterator[Mapping[str, Any]]:
        for pk, rk, columns in self.store.scan_all():
            row = dict(columns)
            row.setdefault("partition_key", pk)
            row.setdefault("row_key", rk)
            yield row

    def count(self) -> int:
        return len(self.store)


class DocumentStoreSource(DataSource):
    """Scan a collection of STORM's own document store (MongoDB)."""

    def __init__(self, store: DocumentStore, collection: str):
        if collection not in store.collections:
            raise ConnectorError(
                f"no collection named {collection!r} in store")
        self.store = store
        self.collection = collection

    @property
    def description(self) -> str:
        return f"mongodb:{self.collection}"

    def scan(self) -> Iterator[Mapping[str, Any]]:
        yield from self.store.collection(self.collection).find()

    def count(self) -> int:
        return self.store.collection(self.collection).count()
