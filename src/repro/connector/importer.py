"""The import pipeline: source → schema → records → indexed dataset.

Two modes, exactly as the paper's demo describes:

``import``
    Copy the source's rows into STORM's storage engine (a document
    collection named after the dataset), then index.  STORM owns the data
    afterwards.
``index``
    Leave the data at the source; only build the spatio-temporal index
    and record cache.  STORM can analyse it but the source remains the
    system of record.

Rows whose coordinates are missing or unparseable are skipped and counted
in the :class:`ImportReport` rather than failing the whole import (real
feeds are dirty).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.connector.base import DataSource
from repro.connector.parsers import parse_timestamp
from repro.connector.schema import (FieldMapping, FieldType, Schema,
                                    SchemaDiscovery)
from repro.core.engine import Dataset, StormEngine
from repro.core.records import Record
from repro.errors import ConnectorError, SchemaError
from repro.storage.catalog import Catalog, DatasetInfo
from repro.storage.document_store import DocumentStore

__all__ = ["Importer", "ImportReport"]


@dataclass(slots=True)
class ImportReport:
    """What an import/index run did."""

    dataset: str
    source: str
    mode: str
    schema: Schema
    mapping: FieldMapping
    imported: int = 0
    skipped: int = 0
    errors: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        return (f"[{self.mode}] {self.source} -> {self.dataset}: "
                f"{self.imported} records"
                + (f", {self.skipped} skipped" if self.skipped else ""))


class Importer:
    """Imports or indexes data sources into a :class:`StormEngine`."""

    MAX_REPORTED_ERRORS = 10

    def __init__(self, engine: StormEngine,
                 store: DocumentStore | None = None,
                 discovery: SchemaDiscovery | None = None):
        self.engine = engine
        self.store = store if store is not None else DocumentStore()
        self.catalog = Catalog(self.store)
        self.discovery = discovery if discovery is not None \
            else SchemaDiscovery()

    # ------------------------------------------------------------------

    def _record_from_row(self, row, schema: Schema,
                         mapping: FieldMapping, record_id: int
                         ) -> Record:
        lon = float(row[mapping.lon_field])
        lat = float(row[mapping.lat_field])
        if not (-1e7 <= lon <= 1e7 and -1e7 <= lat <= 1e7):
            raise SchemaError(f"implausible coordinates ({lon}, {lat})")
        t = 0.0
        if mapping.time_field is not None:
            raw = row.get(mapping.time_field)
            if raw is not None and raw != "":
                t = parse_timestamp(raw)
        attrs = {}
        for name, ftype in schema.fields:
            if name in (mapping.lon_field, mapping.lat_field,
                        mapping.time_field):
                continue
            value = row.get(name)
            if value is None or value == "":
                continue
            if ftype == FieldType.INT:
                try:
                    attrs[name] = int(value)
                    continue
                except (TypeError, ValueError):
                    pass
            if ftype in (FieldType.FLOAT, FieldType.TIMESTAMP):
                try:
                    attrs[name] = float(value)
                    continue
                except (TypeError, ValueError):
                    pass
            attrs[name] = value
        return Record(record_id=record_id, lon=lon, lat=lat, t=t,
                      attrs=attrs)

    def run(self, source: DataSource, dataset_name: str,
            mode: str = "import", mapping: FieldMapping | None = None,
            dims: int = 3, **dataset_kwargs
            ) -> tuple[Dataset, ImportReport]:
        """Import or index one source as a new engine dataset."""
        if mode not in ("import", "index"):
            raise ConnectorError(f"mode must be import|index, not {mode!r}")
        if dataset_name in self.engine.datasets:
            raise ConnectorError(
                f"dataset {dataset_name!r} already exists")
        sample = source.sample_rows(self.discovery.sample_size)
        if not sample:
            raise ConnectorError(f"{source.description} has no rows")
        schema = self.discovery.discover(sample)
        if mapping is None:
            mapping = self.discovery.detect_mapping(schema, sample)
        report = ImportReport(dataset=dataset_name,
                              source=source.description, mode=mode,
                              schema=schema, mapping=mapping)
        records: list[Record] = []
        next_id = 0
        for row in source.scan():
            try:
                record = self._record_from_row(row, schema, mapping,
                                               next_id)
            except (KeyError, TypeError, ValueError, SchemaError) as exc:
                report.skipped += 1
                if len(report.errors) < self.MAX_REPORTED_ERRORS:
                    report.errors.append(str(exc))
                continue
            records.append(record)
            next_id += 1
        if not records:
            raise ConnectorError(
                f"{source.description}: no importable rows "
                f"({report.skipped} skipped)")
        report.imported = len(records)
        if mode == "import":
            coll = self.store.collection(dataset_name)
            coll.insert_many(r.to_document() for r in records)
            self.store.flush(dataset_name)
        dataset = self.engine.create_dataset(dataset_name, records,
                                             dims=dims, **dataset_kwargs)
        self.catalog.register(DatasetInfo(
            name=dataset_name, source=source.description, mode=mode,
            lon_field=mapping.lon_field, lat_field=mapping.lat_field,
            time_field=mapping.time_field, record_count=len(records),
            schema={name: str(ftype) for name, ftype in schema.fields}))
        self.catalog.flush()
        return dataset, report
