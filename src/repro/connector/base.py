"""The DataSource interface every connector backend implements."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator, Mapping

__all__ = ["DataSource"]


class DataSource(ABC):
    """A readable external data source.

    Implementations wrap one storage engine and expose a uniform scan of
    string-keyed rows.  Rows may be stringly typed (CSV) or already typed
    (SQL, document store); the importer's parsing layer normalises them.
    """

    @property
    @abstractmethod
    def description(self) -> str:
        """Human-readable description for the catalog ("csv:file.csv")."""

    @abstractmethod
    def scan(self) -> Iterator[Mapping[str, Any]]:
        """Iterate every row of the source."""

    def sample_rows(self, n: int = 100) -> list[Mapping[str, Any]]:
        """The first n rows (schema discovery input)."""
        out = []
        for row in self.scan():
            out.append(row)
            if len(out) >= n:
                break
        return out

    def count(self) -> int:
        """Row count (default: full scan; backends may override)."""
        return sum(1 for _ in self.scan())
