"""Device-independent cost accounting for index traversals.

The paper's Figure 3(a) is a wall-clock comparison on a disk-resident data
set with q = 10^9 points in range.  A laptop-scale reproduction cannot hold
that, so every index traversal in this library charges a
:class:`CostCounter`, and a :class:`CostModel` converts those counts into
simulated seconds using disk-like constants.  Benchmarks report both the
measured wall time at the reproduction's scale and the simulated time, whose
*shape* across methods is the quantity the paper's figure shows.

The accounting convention is the one the paper uses implicitly:

* one R-tree node = one disk block; touching a node charges one block read;
* a block read is *sequential* when the previous read was its on-disk
  neighbour (range scans enjoy this), otherwise *random* (RandomPath's
  root-to-leaf walks suffer this);
* scanning entries inside an already-fetched node charges CPU only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostCounter", "CostModel", "DEFAULT_COST_MODEL"]


@dataclass
class CostCounter:
    """Mutable tally of work done by index operations.

    Samplers and queries reset/snapshot these counters; the benchmark
    harness converts them to simulated time via a :class:`CostModel`.
    """

    node_reads: int = 0
    random_reads: int = 0
    sequential_reads: int = 0
    leaf_entries_scanned: int = 0
    points_reported: int = 0
    samples_emitted: int = 0
    rejections: int = 0
    cached_reads: int = 0
    _last_block: int | None = field(default=None, repr=False)

    def charge_node(self, block_id: int) -> None:
        """Charge one block read, classifying it sequential vs random."""
        self.node_reads += 1
        if self._last_block is not None and block_id == self._last_block + 1:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self._last_block = block_id

    def charge_entries(self, n: int) -> None:
        """Charge CPU for scanning n entries in a fetched node."""
        self.leaf_entries_scanned += n

    def charge_report(self, n: int = 1) -> None:
        """Tally n points reported to the caller."""
        self.points_reported += n

    def charge_sample(self, n: int = 1) -> None:
        """Tally n samples emitted to the consumer."""
        self.samples_emitted += n

    def charge_rejection(self, n: int = 1) -> None:
        """Tally n rejected draws (acceptance/rejection loops)."""
        self.rejections += n

    def charge_cached(self, n: int = 1) -> None:
        """Tally n reads served from a cache instead of a device.

        Cache hits (canonical-set cache, DFS block cache) deliberately
        do *not* charge node/block reads — the whole point of a hit is
        that the device is never touched — but they are not free either,
        so the cost model prices them separately (RAM, not disk).
        """
        self.cached_reads += n

    def reset(self) -> None:
        self.node_reads = 0
        self.random_reads = 0
        self.sequential_reads = 0
        self.leaf_entries_scanned = 0
        self.points_reported = 0
        self.samples_emitted = 0
        self.rejections = 0
        self.cached_reads = 0
        self._last_block = None

    def snapshot(self) -> "CostCounter":
        """A full-fidelity independent copy of the counter.

        Contract: a snapshot preserves the sequential-read
        classification state (``_last_block``), so a counter resumed
        *from* a snapshot classifies its next :meth:`charge_node`
        exactly as the original would have.  (Earlier versions dropped
        ``_last_block``, silently misclassifying the first post-resume
        read of a range scan as random.)
        """
        return CostCounter(
            node_reads=self.node_reads,
            random_reads=self.random_reads,
            sequential_reads=self.sequential_reads,
            leaf_entries_scanned=self.leaf_entries_scanned,
            points_reported=self.points_reported,
            samples_emitted=self.samples_emitted,
            rejections=self.rejections,
            cached_reads=self.cached_reads,
            _last_block=self._last_block,
        )

    def delta_from(self, earlier: "CostCounter") -> "CostCounter":
        """Tallies accumulated since ``earlier`` was snapshotted.

        Contract: a delta is *pure tallies* — it carries no
        ``_last_block`` locality state, because the difference of two
        counters has no meaningful "previous block".  Charge fresh
        reads into a delta only after treating it as a brand-new
        counter.
        """
        return CostCounter(
            node_reads=self.node_reads - earlier.node_reads,
            random_reads=self.random_reads - earlier.random_reads,
            sequential_reads=self.sequential_reads
            - earlier.sequential_reads,
            leaf_entries_scanned=self.leaf_entries_scanned
            - earlier.leaf_entries_scanned,
            points_reported=self.points_reported - earlier.points_reported,
            samples_emitted=self.samples_emitted - earlier.samples_emitted,
            rejections=self.rejections - earlier.rejections,
            cached_reads=self.cached_reads - earlier.cached_reads,
        )

    def merge(self, other: "CostCounter") -> None:
        """Fold another counter's tallies into this one (cross-machine
        sums; locality state is meaningless across counters and is
        cleared)."""
        self.node_reads += other.node_reads
        self.random_reads += other.random_reads
        self.sequential_reads += other.sequential_reads
        self.leaf_entries_scanned += other.leaf_entries_scanned
        self.points_reported += other.points_reported
        self.samples_emitted += other.samples_emitted
        self.rejections += other.rejections
        self.cached_reads += other.cached_reads
        self._last_block = None

    def as_dict(self) -> dict[str, int]:
        """Public tallies as a plain dict (for exporters)."""
        return {
            "node_reads": self.node_reads,
            "random_reads": self.random_reads,
            "sequential_reads": self.sequential_reads,
            "leaf_entries_scanned": self.leaf_entries_scanned,
            "points_reported": self.points_reported,
            "samples_emitted": self.samples_emitted,
            "rejections": self.rejections,
            "cached_reads": self.cached_reads,
        }


@dataclass(frozen=True)
class CostModel:
    """Constants mapping :class:`CostCounter` tallies to simulated seconds.

    Defaults model a 7200rpm disk (10ms random seek, 100MB/s streaming with
    8KB blocks → ~80µs per sequential block) and a ~10ns per-entry CPU scan,
    i.e. the environment the paper's evaluation implies.
    """

    random_read_seconds: float = 10e-3
    sequential_read_seconds: float = 80e-6
    entry_scan_seconds: float = 10e-9
    per_sample_cpu_seconds: float = 100e-9
    #: A read answered by an in-memory cache (canonical-set cache, DFS
    #: block cache): roughly one RAM round trip, five orders of
    #: magnitude under a random disk read.
    cached_read_seconds: float = 250e-9

    def simulated_seconds(self, cost: CostCounter) -> float:
        """Convert tallies to simulated seconds under these constants."""
        return (cost.random_reads * self.random_read_seconds
                + cost.sequential_reads * self.sequential_read_seconds
                + cost.leaf_entries_scanned * self.entry_scan_seconds
                + cost.samples_emitted * self.per_sample_cpu_seconds
                + cost.cached_reads * self.cached_read_seconds)


DEFAULT_COST_MODEL = CostModel()
