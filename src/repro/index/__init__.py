"""Spatial indexing substrate (the paper's ST-Indexing module).

Provides the R-tree family every sampler is built on:

``repro.index.rtree``
    A classic R-tree with per-node subtree counts, STR bulk loading,
    dynamic insert/delete, range reporting and canonical-set queries.
``repro.index.hilbert``
    A d-dimensional Hilbert curve codec (Skilling's transpose algorithm).
``repro.index.hilbert_rtree``
    A Hilbert-ordered R-tree (the backbone of the RS-tree sampler).
``repro.index.cost``
    Device-independent cost accounting: node/block reads, leaf scans, and a
    simulated-time model so experiments can be reported at paper scale.
"""

from repro.index.cost import CostCounter, CostModel
from repro.index.hilbert import HilbertEncoder, hilbert_index, hilbert_point
from repro.index.hilbert_rtree import HilbertRTree
from repro.index.rstar import RStarTree
from repro.index.rtree import Entry, Node, RTree

__all__ = [
    "CostCounter",
    "CostModel",
    "Entry",
    "HilbertEncoder",
    "HilbertRTree",
    "Node",
    "RStarTree",
    "RTree",
    "hilbert_index",
    "hilbert_point",
]
