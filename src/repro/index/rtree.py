"""A classic R-tree with per-node subtree counts.

This is the substrate under every sampler in the paper:

* **RandomPath** (Olken) needs per-node counts to set descent
  probabilities;
* the **LS-tree** builds one of these per sampling level;
* the **RS-tree** extends the Hilbert variant with per-node sample buffers.

The tree stores point entries ``(item_id, point)``.  It supports STR bulk
loading, dynamic insert/delete (quadratic split, condense-and-reinsert on
underflow), range reporting, counting, and **canonical set** queries — the
decomposition of a query range into maximal fully-contained nodes plus
residual points from partially-overlapping leaves, written ``R_Q`` in the
paper.

Every traversal optionally charges a :class:`repro.index.cost.CostCounter`
so experiments can report device-independent cost; node ids double as block
ids (bulk loading assigns them in layout order, which is what makes range
scans "sequential" under the cost model).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.blocks import ColumnBlock
from repro.core.geometry import Point, Rect
from repro.errors import IndexError_
from repro.index.cost import CostCounter
from repro.obs import NULL_OBS, Observability

__all__ = ["Entry", "Node", "RTree", "CanonicalSet"]


@dataclass(frozen=True, slots=True)
class Entry:
    """A leaf entry: an item id and its point key."""

    item_id: int
    point: Point


class Node:
    """An R-tree node.

    Leaves hold ``entries`` (a list of :class:`Entry`); internal nodes hold
    ``children``.  ``count`` is the number of data points in the subtree —
    the quantity Olken-style sampling depends on.  ``sample_buffer`` and
    ``buffer_pos`` belong to the RS-tree sampler (a pre-shuffled sample of
    the subtree and a consumption cursor); the plain R-tree leaves them
    ``None``/0.

    ``block`` is a leaf's packed columnar twin (see
    :mod:`repro.core.blocks`): built lazily on the first scan, it lets
    rect filters run one pass over contiguous typed arrays instead of N
    per-Entry tuple comparisons.  The Entry list stays the write-side
    source of truth; every mutation drops the block alongside the sample
    buffer and the next scan rebuilds it.
    """

    __slots__ = ("node_id", "mbr", "children", "entries", "count", "parent",
                 "lhv", "sample_buffer", "buffer_pos", "fill_epoch",
                 "block")

    def __init__(self, node_id: int, mbr: Rect,
                 children: "list[Node] | None" = None,
                 entries: list[Entry] | None = None):
        if (children is None) == (entries is None):
            raise IndexError_("node must have children xor entries")
        self.node_id = node_id
        self.mbr = mbr
        self.children = children
        self.entries = entries
        self.parent: "Node | None" = None
        self.lhv = 0  # largest Hilbert value (Hilbert R-tree only)
        self.sample_buffer: list[Entry] | None = None
        self.buffer_pos = 0
        # Bumped on every buffer (re)fill; streams compare epochs to
        # prove a buffer slice cannot repeat an already-drawn entry
        # (duplicates only arise across refills of the same node).
        self.fill_epoch = 0
        self.block: ColumnBlock | None = None
        if entries is not None:
            self.count = len(entries)
        else:
            self.count = sum(c.count for c in children)  # type: ignore[union-attr]
            for c in children:  # type: ignore[union-attr]
                c.parent = self

    @property
    def is_leaf(self) -> bool:
        """Whether this node holds entries (vs children)."""
        return self.entries is not None

    def members(self) -> int:
        """Number of direct members (entries or children)."""
        if self.entries is not None:
            return len(self.entries)
        return len(self.children)  # type: ignore[arg-type]

    def recompute_mbr(self) -> None:
        """Recompute the MBR exactly from current members."""
        if self.entries is not None:
            self.mbr = Rect.bounding([e.point for e in self.entries])
        else:
            self.mbr = Rect.union_all([c.mbr for c in self.children])  # type: ignore[arg-type]

    def recompute_count(self) -> None:
        """Recompute the subtree count from current members."""
        if self.entries is not None:
            self.count = len(self.entries)
        else:
            self.count = sum(c.count for c in self.children)  # type: ignore[union-attr]

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return (f"<Node {self.node_id} {kind} count={self.count} "
                f"members={self.members()}>")


@dataclass(slots=True)
class CanonicalSet:
    """The canonical decomposition ``R_Q`` of a range query.

    ``nodes`` are maximal nodes whose MBR lies fully inside the query;
    ``residual`` are the individual in-range entries found in
    partially-overlapping leaves.  Together they cover ``P ∩ Q`` exactly
    once.
    """

    query: Rect
    nodes: list[Node]
    residual: list[Entry]

    @property
    def count(self) -> int:
        """Exact ``q = |P ∩ Q|``, available without scanning subtrees."""
        return sum(n.count for n in self.nodes) + len(self.residual)


class RTree:
    """R-tree over point data with subtree counts.

    Parameters
    ----------
    dims:
        Dimensionality of stored points.
    leaf_capacity / branch_capacity:
        Maximum entries in a leaf / children of an internal node.  These
        model disk-block fanout; the benchmarks use the defaults.
    min_fill:
        Minimum fill fraction before a node is condensed on delete.
    canonical_cache_size:
        How many query rects' canonical sets to keep (LRU).  Repeated
        or refined interactive queries hit the cache and skip the
        root-to-leaf decomposition walk entirely; 0 disables caching.
        Any structural change (insert/delete/bulk load) bumps
        ``version``, which invalidates every cached entry at once.
    """

    #: Maximum cached canonical sets per tree (LRU beyond this).
    DEFAULT_CANONICAL_CACHE = 128

    def __init__(self, dims: int, leaf_capacity: int = 64,
                 branch_capacity: int = 16, min_fill: float = 0.4,
                 canonical_cache_size: int | None = None):
        if dims < 1:
            raise IndexError_("dims must be >= 1")
        if leaf_capacity < 2 or branch_capacity < 2:
            raise IndexError_("capacities must be >= 2")
        if not 0.0 < min_fill <= 0.5:
            raise IndexError_("min_fill must be in (0, 0.5]")
        self.dims = dims
        self.leaf_capacity = leaf_capacity
        self.branch_capacity = branch_capacity
        self.min_leaf = max(1, int(leaf_capacity * min_fill))
        self.min_branch = max(1, int(branch_capacity * min_fill))
        self.cost = CostCounter()
        self._next_node_id = 0
        self.root: Node | None = None
        self.size = 0
        self.height = 0
        #: Observability sink (datasets rebind it); cache hit/miss
        #: counters flow here when a live registry is attached.
        self.obs: Observability = NULL_OBS
        #: Structural version: bumped by every insert/delete/bulk load.
        #: Cached canonical sets are valid only for the version they
        #: were computed at.
        self.version = 0
        self._canon_capacity = self.DEFAULT_CANONICAL_CACHE \
            if canonical_cache_size is None else canonical_cache_size
        # query rect -> (version at compute time, canonical set)
        self._canon_cache: "OrderedDict[Rect, tuple[int, CanonicalSet]]" \
            = OrderedDict()
        self.canon_hits = 0
        self.canon_misses = 0
        #: Vectorised leaf-scan tallies: whole-block rect filters run
        #: and entries they admitted.  EXPLAIN ANALYZE deltas these per
        #: query (see ``QueryExecutor.explain_report``).
        self.vector_filters = 0
        self.vector_filter_hits = 0
        #: Leaf blocks packed since construction (storm.blocks.leaf_builds).
        self.leaf_blocks_built = 0

    def bind_observability(self, obs: Observability) -> None:
        """Attach a live registry/tracer pair (datasets do this)."""
        self.obs = obs

    def _bump_version(self) -> None:
        """Invalidate cached canonical sets after a structural change."""
        self.version += 1
        if self._canon_cache:
            self._canon_cache.clear()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _new_node_id(self) -> int:
        nid = self._next_node_id
        self._next_node_id += 1
        return nid

    def _new_leaf(self, entries: list[Entry]) -> Node:
        return Node(self._new_node_id(),
                    Rect.bounding([e.point for e in entries]),
                    entries=entries)

    def _new_internal(self, children: list[Node]) -> Node:
        return Node(self._new_node_id(),
                    Rect.union_all([c.mbr for c in children]),
                    children=children)

    def bulk_load(self, items: Iterable[tuple[int, Sequence[float]]]) -> None:
        """Build the tree from scratch with STR packing.

        ``items`` is an iterable of ``(item_id, point)``.  Replaces any
        existing contents.
        """
        entries = [Entry(item_id, tuple(map(float, point)))
                   for item_id, point in items]
        dims = self.dims
        for e in entries:
            if len(e.point) != dims:
                raise IndexError_(
                    f"point {e.point} has wrong dimensionality")
        self._bump_version()
        self._next_node_id = 0
        self.size = len(entries)
        if not entries:
            self.root = None
            self.height = 0
            return
        groups = self._partition_entries(entries)
        level: list[Node] = [self._new_leaf(g) for g in groups]
        self.height = 1
        while len(level) > 1:
            level = [self._new_internal(g)
                     for g in self._partition_nodes(level)]
            self.height += 1
        self.root = level[0]
        self.root.parent = None

    def _sort_key_entry(self, axis: int) -> Callable[[Entry], float]:
        return lambda e: e.point[axis]

    def _partition_entries(self, entries: list[Entry]) -> list[list[Entry]]:
        """Sort-Tile-Recursive grouping of entries into leaf pages."""
        return _str_partition(entries, self.leaf_capacity, self.dims,
                              key=lambda e, ax: e.point[ax])

    def _partition_nodes(self, nodes: list[Node]) -> list[list[Node]]:
        """STR grouping of nodes (by MBR center) into parent pages."""
        return _str_partition(nodes, self.branch_capacity, self.dims,
                              key=lambda n, ax: n.mbr.center[ax])

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------

    def insert(self, item_id: int, point: Sequence[float]) -> None:
        """Insert one point entry, splitting on overflow."""
        entry = Entry(item_id, tuple(float(c) for c in point))
        if len(entry.point) != self.dims:
            raise IndexError_("point has wrong dimensionality")
        self._bump_version()
        if self.root is None:
            self.root = self._new_leaf([entry])
            self.height = 1
            self.size = 1
            return
        leaf = self._choose_leaf(entry)
        leaf.entries.append(entry)  # type: ignore[union-attr]
        self._adjust_upward(leaf, entry.point)
        if leaf.members() > self.leaf_capacity:
            self._split(leaf)
        self.size += 1

    def _choose_leaf(self, entry: Entry) -> Node:
        """Descend by minimum MBR enlargement (ties: minimum area)."""
        node = self.root
        assert node is not None
        point_rect = Rect.from_point(entry.point)
        while not node.is_leaf:
            best = None
            best_key = None
            for child in node.children:  # type: ignore[union-attr]
                key = (child.mbr.enlargement(point_rect), child.mbr.area())
                if best_key is None or key < best_key:
                    best, best_key = child, key
            node = best  # type: ignore[assignment]
        return node

    def _adjust_upward(self, node: Node, point: Point) -> None:
        """Extend MBRs and bump counts from ``node`` up to the root."""
        n: Node | None = node
        while n is not None:
            n.mbr = n.mbr.union_point(point)
            n.count += 1
            self._invalidate_buffer(n)
            n = n.parent

    def _invalidate_buffer(self, node: Node) -> None:
        """Hook for samplers that cache per-node state (RS-tree)."""
        node.sample_buffer = None
        node.buffer_pos = 0
        node.block = None

    def _leaf_block(self, node: Node) -> ColumnBlock:
        """The leaf's packed columnar twin, building it on first scan."""
        block = node.block
        if block is None:
            block = node.block = ColumnBlock.from_entries(
                node.entries or [], self.dims)
            self.leaf_blocks_built += 1
            registry = self.obs.registry
            if registry.enabled:
                registry.counter("storm.blocks.leaf_builds").inc()
        return block

    def _scan_leaf(self, node: Node, query: Rect) -> list[int]:
        """Vectorised partial-leaf filter: positions of in-range entries."""
        hits = self._leaf_block(node).indices_in(query.lo, query.hi)
        self.vector_filters += 1
        self.vector_filter_hits += len(hits)
        return hits

    def _split(self, node: Node) -> None:
        """Split an overflowing node and propagate upward."""
        sibling = self._split_members(node)
        parent = node.parent
        if parent is None:
            new_root = self._new_internal([node, sibling])
            self.root = new_root
            self.root.parent = None
            self.height += 1
            return
        sibling.parent = parent
        parent.children.append(sibling)  # type: ignore[union-attr]
        # node/sibling mbrs were recomputed in _split_members; the parent
        # MBR is unchanged (same underlying points), counts unchanged.
        if parent.members() > self.branch_capacity:
            self._split(parent)

    def _split_members(self, node: Node) -> Node:
        """Quadratic split: returns the new sibling; mutates ``node``."""
        if node.is_leaf:
            items = node.entries
            rect_of = lambda e: Rect.from_point(e.point)  # noqa: E731
            minimum = self.min_leaf
        else:
            items = node.children
            rect_of = lambda n: n.mbr  # noqa: E731
            minimum = self.min_branch
        assert items is not None
        group_a, group_b = _quadratic_split(items, rect_of, minimum)
        if node.is_leaf:
            node.entries = group_a
            sibling = self._new_leaf(group_b)
        else:
            node.children = group_a
            sibling = self._new_internal(group_b)
            for c in group_b:
                c.parent = sibling
        node.recompute_mbr()
        node.recompute_count()
        sibling.recompute_count()
        self._invalidate_buffer(node)
        self._invalidate_buffer(sibling)
        return sibling

    def delete(self, item_id: int, point: Sequence[float]) -> bool:
        """Delete the entry matching ``(item_id, point)``.

        Returns ``True`` when found and removed; underflowing nodes along
        the path are condensed and their entries reinserted (the classic
        Guttman condense step).
        """
        pt = tuple(float(c) for c in point)
        if self.root is None:
            return False
        leaf = self._find_leaf(self.root, item_id, pt)
        if leaf is None:
            return False
        self._bump_version()
        leaf.entries = [e for e in leaf.entries  # type: ignore[union-attr]
                        if not (e.item_id == item_id and e.point == pt)]
        self.size -= 1
        self._condense(leaf)
        self._shrink_root()
        return True

    def _find_leaf(self, node: Node, item_id: int, point: Point
                   ) -> Node | None:
        if not node.mbr.contains_point(point):
            return None
        if node.is_leaf:
            for e in node.entries:  # type: ignore[union-attr]
                if e.item_id == item_id and e.point == point:
                    return node
            return None
        for child in node.children:  # type: ignore[union-attr]
            found = self._find_leaf(child, item_id, point)
            if found is not None:
                return found
        return None

    def _condense(self, leaf: Node) -> None:
        orphans: list[Node] = []
        node: Node | None = leaf
        while node is not None:
            parent = node.parent
            minimum = self.min_leaf if node.is_leaf else self.min_branch
            if parent is not None and node.members() < minimum:
                parent.children.remove(node)  # type: ignore[union-attr]
                node.parent = None
                orphans.append(node)
            elif node.members() > 0:
                node.recompute_mbr()
                node.recompute_count()
                self._invalidate_buffer(node)
            else:
                # Empty root: nothing left to recompute.
                self._invalidate_buffer(node)
                node.count = 0
            node = parent
        for orphan in orphans:
            for entry in _iter_subtree_entries(orphan):
                # Reinsert without size bookkeeping (size already reflects
                # the data set; these entries were never logically removed).
                self.size -= 1
                self.insert(entry.item_id, entry.point)

    def _shrink_root(self) -> None:
        while (self.root is not None and not self.root.is_leaf
               and self.root.members() == 1):
            self.root = self.root.children[0]  # type: ignore[index]
            self.root.parent = None
            self.height -= 1
        if self.root is not None and self.root.is_leaf \
                and self.root.members() == 0:
            self.root = None
            self.height = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query(self, query: Rect, cost: CostCounter | None = None
                    ) -> list[Entry]:
        """Report every entry inside ``query`` (full range reporting)."""
        cost = cost if cost is not None else self.cost
        result: list[Entry] = []
        if self.root is None:
            return result
        stack = [self.root]
        while stack:
            node = stack.pop()
            cost.charge_node(node.node_id)
            if node.is_leaf:
                cost.charge_entries(node.members())
                entries = node.entries
                hits = self._scan_leaf(node, query)
                result.extend(entries[i] for i in hits)  # type: ignore[index]
                cost.charge_report(len(hits))
            else:
                # Push in reverse so children pop in layout order — range
                # scans then read consecutive blocks (sequential I/O).
                for child in reversed(node.children):  # type: ignore[arg-type]
                    if query.intersects(child.mbr):
                        stack.append(child)
        return result

    def range_count(self, query: Rect, cost: CostCounter | None = None
                    ) -> int:
        """Exact count of points in ``query`` using subtree counts."""
        cost = cost if cost is not None else self.cost
        if self.root is None:
            return 0
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            cost.charge_node(node.node_id)
            if query.contains(node.mbr):
                total += node.count
            elif node.is_leaf:
                cost.charge_entries(node.members())
                count = self._leaf_block(node).count_in(query.lo, query.hi)
                self.vector_filters += 1
                self.vector_filter_hits += count
                total += count
            else:
                # Push in reverse so children pop in layout order — range
                # scans then read consecutive blocks (sequential I/O).
                for child in reversed(node.children):  # type: ignore[arg-type]
                    if query.intersects(child.mbr):
                        stack.append(child)
        return total

    def canonical_set(self, query: Rect, cost: CostCounter | None = None
                      ) -> CanonicalSet:
        """Decompose ``query`` into maximal contained nodes + residuals.

        This is the ``R_Q`` of the paper: the lazy exploration stops at any
        node fully inside the query, so the decomposition touches
        ``O(r(N))`` nodes instead of the whole in-range subtree.

        Results are cached per query rect (LRU, ``canonical_cache_size``
        entries) and keyed to the tree ``version``, so a repeated
        interactive query skips the walk entirely; a hit charges one
        cached read instead of the node reads of the walk.  Callers
        must not mutate the returned node/residual lists.
        """
        cost = cost if cost is not None else self.cost
        cached = self._canon_cache.get(query)
        if cached is not None and cached[0] == self.version:
            self._canon_cache.move_to_end(query)
            self.canon_hits += 1
            cost.charge_cached()
            registry = self.obs.registry
            if registry.enabled:
                registry.counter("storm.cache.canonical.hits").inc()
            return cached[1]
        self.canon_misses += 1
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.cache.canonical.misses").inc()
        result = self._compute_canonical_set(query, cost)
        if self._canon_capacity > 0:
            self._canon_cache[query] = (self.version, result)
            self._canon_cache.move_to_end(query)
            while len(self._canon_cache) > self._canon_capacity:
                self._canon_cache.popitem(last=False)
        return result

    def _compute_canonical_set(self, query: Rect, cost: CostCounter
                               ) -> CanonicalSet:
        nodes: list[Node] = []
        residual: list[Entry] = []
        if self.root is None:
            return CanonicalSet(query, nodes, residual)
        stack = [self.root]
        while stack:
            node = stack.pop()
            cost.charge_node(node.node_id)
            if query.contains(node.mbr):
                nodes.append(node)
            elif node.is_leaf:
                cost.charge_entries(node.members())
                entries = node.entries
                residual.extend(
                    entries[i]  # type: ignore[index]
                    for i in self._scan_leaf(node, query))
            else:
                # Push in reverse so children pop in layout order — range
                # scans then read consecutive blocks (sequential I/O).
                for child in reversed(node.children):  # type: ignore[arg-type]
                    if query.intersects(child.mbr):
                        stack.append(child)
        return CanonicalSet(query, nodes, residual)

    # ------------------------------------------------------------------
    # iteration & verification
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def iter_entries(self) -> Iterator[Entry]:
        """Iterate every entry in the tree (arbitrary order)."""
        if self.root is None:
            return
        yield from _iter_subtree_entries(self.root)

    @property
    def bounds(self) -> Rect | None:
        """The root MBR, or None when empty."""
        return None if self.root is None else self.root.mbr

    def leaf_block_stats(self) -> tuple[int, int]:
        """(total leaves, leaves currently holding a packed block).

        EXPLAIN ANALYZE reports this as the leaf storage format:
        packed leaves scan columnar, the rest scan their Entry lists
        until a query touches them.
        """
        leaves = packed = 0
        if self.root is None:
            return 0, 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves += 1
                if node.block is not None:
                    packed += 1
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return leaves, packed

    def node_count(self) -> int:
        """Total number of nodes (for space accounting)."""
        if self.root is None:
            return 0
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[arg-type]
        return total

    def validate(self) -> None:
        """Check every structural invariant; raises on violation.

        Used by tests (including property-based tests on random
        insert/delete sequences).
        """
        if self.root is None:
            if self.size != 0:
                raise IndexError_("empty tree with nonzero size")
            return
        if self.root.parent is not None:
            raise IndexError_("root has a parent")
        total, depth = self._validate_node(self.root, is_root=True)
        if total != self.size:
            raise IndexError_(f"size {self.size} != counted {total}")
        if depth != self.height:
            raise IndexError_(f"height {self.height} != measured {depth}")

    def _validate_node(self, node: Node, is_root: bool = False
                       ) -> tuple[int, int]:
        if node.is_leaf:
            entries = node.entries or []
            if not is_root and not (
                    self.min_leaf <= len(entries) <= self.leaf_capacity):
                raise IndexError_(
                    f"leaf {node.node_id} has {len(entries)} entries")
            for e in entries:
                if not node.mbr.contains_point(e.point):
                    raise IndexError_(
                        f"leaf {node.node_id} MBR misses {e.point}")
            if node.count != len(entries):
                raise IndexError_(f"leaf {node.node_id} count wrong")
            return len(entries), 1
        children = node.children or []
        if not is_root and not (
                self.min_branch <= len(children) <= self.branch_capacity):
            raise IndexError_(
                f"node {node.node_id} has {len(children)} children")
        if is_root and len(children) < 2:
            raise IndexError_("internal root with < 2 children")
        total = 0
        depths = set()
        for child in children:
            if child.parent is not node:
                raise IndexError_(
                    f"child {child.node_id} has wrong parent pointer")
            if not node.mbr.contains(child.mbr):
                raise IndexError_(
                    f"node {node.node_id} MBR misses child "
                    f"{child.node_id}")
            c_total, c_depth = self._validate_node(child)
            total += c_total
            depths.add(c_depth)
        if len(depths) != 1:
            raise IndexError_(f"node {node.node_id} unbalanced: {depths}")
        if node.count != total:
            raise IndexError_(
                f"node {node.node_id} count {node.count} != {total}")
        return total, depths.pop() + 1


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _iter_subtree_entries(node: Node) -> Iterator[Entry]:
    stack = [node]
    while stack:
        n = stack.pop()
        if n.is_leaf:
            yield from n.entries  # type: ignore[misc]
        else:
            stack.extend(n.children)  # type: ignore[arg-type]


def _even_chunks(items: list, capacity: int) -> list[list]:
    """Split into ≤capacity chunks whose sizes differ by at most one.

    Balancing (instead of taking full chunks and a small remainder) keeps
    every bulk-loaded node at least half full, so the min-fill invariant
    holds from the start.
    """
    n = len(items)
    if n == 0:
        return []
    chunks = math.ceil(n / capacity)
    base, extra = divmod(n, chunks)
    out: list[list] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out


def _str_partition(items: list, capacity: int, dims: int,
                   key: Callable[[object, int], float]) -> list[list]:
    """Sort-Tile-Recursive grouping of ``items`` into pages of ``capacity``.

    Generic over entries and nodes via the ``key(item, axis)`` accessor.
    """
    def recurse(chunk: list, axis: int) -> list[list]:
        n = len(chunk)
        if n <= capacity:
            return [chunk]
        if axis >= dims - 1:
            chunk.sort(key=lambda it: key(it, axis))
            return _even_chunks(chunk, capacity)
        pages = math.ceil(n / capacity)
        slabs = math.ceil(pages ** (1.0 / (dims - axis)))
        chunk.sort(key=lambda it: key(it, axis))
        groups: list[list] = []
        for slab in _even_chunks(chunk, math.ceil(n / slabs)):
            groups.extend(recurse(slab, axis + 1))
        return groups

    return recurse(list(items), 0)


def _quadratic_split(items: list, rect_of: Callable, minimum: int
                     ) -> tuple[list, list]:
    """Guttman's quadratic split of an overflowing member list.

    ``minimum`` is the fill floor each resulting group must reach (the
    tree's ``min_leaf``/``min_branch``), enforced by force-assignment.
    """
    rects = [rect_of(it) for it in items]
    n = len(items)
    # Pick the seed pair wasting the most area together.
    worst = -math.inf
    seed_a = seed_b = 0
    for i in range(n):
        for j in range(i + 1, n):
            waste = (rects[i].union(rects[j]).area()
                     - rects[i].area() - rects[j].area())
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j
    group_a = [items[seed_a]]
    group_b = [items[seed_b]]
    mbr_a = rects[seed_a]
    mbr_b = rects[seed_b]
    remaining = [i for i in range(n) if i not in (seed_a, seed_b)]
    min_fill = min(minimum, n // 2)
    for idx in remaining:
        # Force-assign when one group must take everything left to reach
        # its minimum fill.
        left = len(remaining) - (len(group_a) + len(group_b) - 2)
        if len(group_a) + left <= min_fill:
            group_a.append(items[idx])
            mbr_a = mbr_a.union(rects[idx])
            continue
        if len(group_b) + left <= min_fill:
            group_b.append(items[idx])
            mbr_b = mbr_b.union(rects[idx])
            continue
        grow_a = mbr_a.union(rects[idx]).area() - mbr_a.area()
        grow_b = mbr_b.union(rects[idx]).area() - mbr_b.area()
        if grow_a < grow_b or (grow_a == grow_b
                               and len(group_a) <= len(group_b)):
            group_a.append(items[idx])
            mbr_a = mbr_a.union(rects[idx])
        else:
            group_b.append(items[idx])
            mbr_b = mbr_b.union(rects[idx])
    return group_a, group_b
