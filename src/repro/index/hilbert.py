"""d-dimensional Hilbert curve codec.

Implements Skilling's transpose algorithm ("Programming the Hilbert curve",
AIP Conf. Proc. 707, 2004), which maps between a point on the ``2^bits``
integer grid in ``dim`` dimensions and its position along the Hilbert
space-filling curve.  The Hilbert R-tree (and therefore the RS-tree) sorts
points by this position: nearby curve positions are nearby in space, which
is what gives the single-tree sampler its block locality.

``hilbert_index``/``hilbert_point`` work on integer grid coordinates;
:class:`HilbertEncoder` handles the float world, normalising points inside a
bounding box onto the grid.
"""

from __future__ import annotations

from typing import Sequence

try:  # numpy accelerates the batch paths; scalar paths need nothing.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the repo
    _np = None

from repro.core.geometry import Rect
from repro.errors import GeometryError

__all__ = ["hilbert_index", "hilbert_index_batch", "hilbert_point",
           "HilbertEncoder"]


def _axes_to_transpose(coords: Sequence[int], bits: int, dim: int
                       ) -> list[int]:
    """Convert grid axes to the 'transposed' Hilbert representation."""
    x = list(coords)
    m = 1 << (bits - 1)
    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, dim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dim):
        x[i] ^= t
    return x


def _transpose_to_axes(transposed: Sequence[int], bits: int, dim: int
                       ) -> list[int]:
    """Inverse of :func:`_axes_to_transpose`."""
    x = list(transposed)
    n = 2 << (bits - 1)
    # Gray decode by H ^ (H/2).
    t = x[dim - 1] >> 1
    for i in range(dim - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != n:
        p = q - 1
        for i in range(dim - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _interleave(transposed: Sequence[int], bits: int, dim: int) -> int:
    """Pack the transposed representation into a single integer key."""
    key = 0
    for j in range(bits - 1, -1, -1):
        for i in range(dim):
            key = (key << 1) | ((transposed[i] >> j) & 1)
    return key


def _deinterleave(key: int, bits: int, dim: int) -> list[int]:
    """Unpack a key into the transposed representation."""
    x = [0] * dim
    for j in range(bits - 1, -1, -1):
        for i in range(dim):
            shift = j * dim + (dim - 1 - i)
            x[i] = (x[i] << 1) | ((key >> shift) & 1)
    return x


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """Hilbert curve position of an integer grid point.

    ``coords`` must all lie in ``[0, 2^bits)``.  The result lies in
    ``[0, 2^(bits*dim))`` and adjacent results are adjacent grid cells.
    """
    dim = len(coords)
    if dim < 1:
        raise GeometryError("need at least one coordinate")
    limit = 1 << bits
    for c in coords:
        if not 0 <= c < limit:
            raise GeometryError(
                f"coordinate {c} outside grid [0, {limit})")
    if dim == 1:
        return int(coords[0])
    return _interleave(_axes_to_transpose(coords, bits, dim), bits, dim)


def hilbert_index_batch(coords, bits: int) -> list[int]:
    """Hilbert curve positions of many grid points at once.

    ``coords`` is an ``(n, dim)`` array-like of integers in
    ``[0, 2^bits)``.  Semantically identical to calling
    :func:`hilbert_index` per row, but the Skilling transpose runs as
    whole-array bitwise operations (the per-point Python interpreter
    cost is what dominates bulk loads — sealing LSM runs and
    compactions call this on every batch).  Falls back to the scalar
    loop when numpy is unavailable or a key would overflow ``int64``.
    """
    rows = _np.asarray(coords, dtype=_np.int64) if _np is not None \
        else None
    if rows is None or rows.ndim != 2 or rows.shape[0] == 0 \
            or rows.shape[1] * bits > 62:
        return [hilbert_index(tuple(int(c) for c in row), bits)
                for row in coords]
    n, dim = rows.shape
    limit = 1 << bits
    if bool((rows < 0).any()) or bool((rows >= limit).any()):
        raise GeometryError(
            f"coordinate outside grid [0, {limit})")
    if dim == 1:
        return [int(v) for v in rows[:, 0]]
    x = rows.copy()
    m = 1 << (bits - 1)
    # Inverse undo excess work (vectorised over all n points; where()
    # keeps both branches branch-free instead of fancy-indexing).
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            hi = (x[:, i] & q) != 0
            t = _np.where(hi, 0, (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] ^= _np.where(hi, p, t)
            x[:, i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, dim):
        x[:, i] ^= x[:, i - 1]
    t = _np.zeros(n, dtype=_np.int64)
    q = m
    while q > 1:
        sel = (x[:, dim - 1] & q) != 0
        t[sel] ^= q - 1
        q >>= 1
    x ^= t[:, None]
    # Interleave bit j of every axis into the packed key.
    key = _np.zeros(n, dtype=_np.int64)
    for j in range(bits - 1, -1, -1):
        for i in range(dim):
            key = (key << 1) | ((x[:, i] >> j) & 1)
    return key.tolist()


def hilbert_point(index: int, bits: int, dim: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_index`."""
    if not 0 <= index < (1 << (bits * dim)):
        raise GeometryError("hilbert index out of range for grid")
    if dim == 1:
        return (index,)
    return tuple(_transpose_to_axes(_deinterleave(index, bits, dim),
                                    bits, dim))


class HilbertEncoder:
    """Maps float points inside a bounding box to Hilbert keys.

    The encoder snaps each coordinate onto a ``2^bits`` grid over the
    bounding box.  Points outside the box are clamped, so the encoder stays
    usable when updates extend slightly beyond the original data extent.
    """

    __slots__ = ("bounds", "bits", "_scale")

    def __init__(self, bounds: Rect, bits: int = 16):
        if bits < 1 or bits * bounds.dim > 63 * 3:
            raise GeometryError(f"unsupported bits per dimension: {bits}")
        self.bounds = bounds
        self.bits = bits
        cells = (1 << bits) - 1
        scale = []
        for lo, hi in zip(bounds.lo, bounds.hi):
            extent = hi - lo
            scale.append(cells / extent if extent > 0 else 0.0)
        self._scale = tuple(scale)

    @property
    def dim(self) -> int:
        """Dimensionality of the encoder's grid."""
        return self.bounds.dim

    def grid(self, point: Sequence[float]) -> tuple[int, ...]:
        """Snap a float point onto the integer grid (clamping)."""
        if len(point) != self.dim:
            raise GeometryError(
                f"point has {len(point)} coords, encoder is {self.dim}-d")
        cells = (1 << self.bits) - 1
        out = []
        for c, lo, s in zip(point, self.bounds.lo, self._scale):
            g = int((c - lo) * s)
            if g < 0:
                g = 0
            elif g > cells:
                g = cells
            out.append(g)
        return tuple(out)

    def key(self, point: Sequence[float]) -> int:
        """Hilbert key of a float point."""
        return hilbert_index(self.grid(point), self.bits)

    def keys(self, points: Sequence[Sequence[float]]) -> list[int]:
        """Hilbert keys of many float points (vectorised grid snap).

        Equivalent to ``[self.key(p) for p in points]`` but snaps the
        whole batch with array arithmetic and feeds the grid through
        :func:`hilbert_index_batch`; bulk loads call this once per
        node-level build instead of one scalar encode per entry.
        """
        pts = list(points)
        if not pts:
            return []
        if _np is None:
            return [self.key(p) for p in pts]
        arr = _np.asarray(pts, dtype=_np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise GeometryError(
                f"points must be (n, {self.dim}) shaped")
        lo = _np.asarray(self.bounds.lo, dtype=_np.float64)
        scale = _np.asarray(self._scale, dtype=_np.float64)
        cells = (1 << self.bits) - 1
        grid = ((arr - lo) * scale).astype(_np.int64)
        _np.clip(grid, 0, cells, out=grid)
        return hilbert_index_batch(grid, self.bits)
