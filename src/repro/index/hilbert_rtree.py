"""Hilbert R-tree: an R-tree whose entries are ordered by Hilbert key.

The RS-tree sampler (Section 3.1 of the paper) is built "based on a single
Hilbert R-tree over P".  Ordering leaves along the Hilbert curve gives the
tree two properties the sampler exploits:

* leaves are laid out in curve order, so node ids (= block ids) of a range
  scan are nearly consecutive — sequential I/O under the cost model;
* insertion placement is decided by key comparison instead of the
  enlargement heuristic, so updates keep the ordering (and the per-node
  sample buffers stay attached to geographically coherent subtrees).

Internal nodes carry ``lhv`` — the largest Hilbert value in their subtree —
which guides insertions exactly as in Kamel & Faloutsos' original design.
Splits divide members in key order (order-preserving 1-to-2 split).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.geometry import Rect
from repro.errors import IndexError_
from repro.index.hilbert import HilbertEncoder
from repro.index.rtree import Entry, Node, RTree, _even_chunks

__all__ = ["HilbertRTree"]


class HilbertRTree(RTree):
    """R-tree ordered by the Hilbert curve position of each point.

    ``bounds`` fixes the grid the Hilbert encoder snaps points onto.  Points
    inserted outside the bounds are clamped onto the boundary cells — fine
    for sampling correctness (keys only affect placement), though heavy
    out-of-bounds insertion degrades clustering.
    """

    def __init__(self, dims: int, bounds: Rect, bits: int = 16,
                 leaf_capacity: int = 64, branch_capacity: int = 16,
                 min_fill: float = 0.4):
        super().__init__(dims, leaf_capacity=leaf_capacity,
                         branch_capacity=branch_capacity, min_fill=min_fill)
        if bounds.dim != dims:
            raise IndexError_(
                f"bounds are {bounds.dim}-d but the tree is {dims}-d")
        self.encoder = HilbertEncoder(bounds, bits=bits)
        # Populated for the duration of a bulk load: item_id -> key,
        # encoded once as a batch and shared by the sort partition and
        # the lhv recomputation (previously each entry was encoded
        # twice through the scalar codec — the dominant build cost).
        self._bulk_keys: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # key helpers
    # ------------------------------------------------------------------

    def entry_key(self, entry: Entry) -> int:
        """Hilbert key of a leaf entry's point."""
        cache = self._bulk_keys
        if cache is not None:
            key = cache.get(entry.item_id)
            if key is not None:
                return key
        return self.encoder.key(entry.point)

    # ------------------------------------------------------------------
    # bulk load: chunk in key order instead of STR tiling
    # ------------------------------------------------------------------

    def bulk_load(self, items: Iterable[tuple[int, Sequence[float]]]) -> None:
        """STR-free bulk load: sort by Hilbert key, chunk, set lhv."""
        try:
            super().bulk_load(items)
            if self.root is not None:
                self._recompute_lhv(self.root)
        finally:
            self._bulk_keys = None

    def _partition_entries(self, entries: list[Entry]) -> list[list[Entry]]:
        keys = self.encoder.keys([e.point for e in entries])
        cache = {e.item_id: k for e, k in zip(entries, keys)}
        self._bulk_keys = cache
        return _even_chunks(sorted(entries,
                                   key=lambda e: cache[e.item_id]),
                            self.leaf_capacity)

    def _partition_nodes(self, nodes: list[Node]) -> list[list[Node]]:
        # Bulk loading creates nodes in key order already; preserve it.
        return _even_chunks(nodes, self.branch_capacity)

    def _recompute_lhv(self, node: Node) -> int:
        if node.is_leaf:
            entries = node.entries or []
            if self._bulk_keys is not None and entries:
                # Bulk loads chunk entries in sorted key order, so the
                # leaf maximum is simply the last entry's key.
                node.lhv = self.entry_key(entries[-1])
            else:
                node.lhv = max((self.entry_key(e) for e in entries),
                               default=0)
        else:
            node.lhv = max(self._recompute_lhv(c)
                           for c in node.children or [])
        return node.lhv

    # ------------------------------------------------------------------
    # shape introspection (observability gauges, EXPLAIN)
    # ------------------------------------------------------------------

    def shape(self) -> dict[str, int]:
        """Structural summary: height, node/leaf counts, entries.

        One full traversal — cheap next to a build, and what the
        metrics gauges and the EXPLAIN report publish; node count is
        the block footprint under the one-node-one-block convention.
        """
        nodes = leaves = 0
        if self.root is not None:
            stack = [self.root]
            while stack:
                node = stack.pop()
                nodes += 1
                if node.is_leaf:
                    leaves += 1
                else:
                    stack.extend(node.children or [])
        return {"height": self.height, "nodes": nodes,
                "leaves": leaves, "entries": len(self)}

    # ------------------------------------------------------------------
    # dynamic updates: key-guided placement, order-preserving splits
    # ------------------------------------------------------------------

    def insert(self, item_id: int, point: Sequence[float]) -> None:
        """Key-guided insert (sets lhv on the empty-tree fast path)."""
        was_empty = self.root is None
        super().insert(item_id, point)
        if was_empty and self.root is not None:
            # The empty-tree fast path skips _choose_leaf, so set lhv here.
            self.root.lhv = self.encoder.key(
                tuple(float(c) for c in point))

    def _choose_leaf(self, entry: Entry) -> Node:
        """Descend to the child with the smallest ``lhv >= key``."""
        key = self.entry_key(entry)
        node = self.root
        assert node is not None
        while not node.is_leaf:
            children = node.children or []
            chosen = None
            for child in children:
                if child.lhv >= key:
                    chosen = child
                    break
            node = chosen if chosen is not None else children[-1]
        if node.lhv < key:
            # The new maximum propagates on the way up in _adjust_upward;
            # set it here for the leaf itself.
            self._bump_lhv_upward(node, key)
        return node

    def _bump_lhv_upward(self, node: Node, key: int) -> None:
        n: Node | None = node
        while n is not None and n.lhv < key:
            n.lhv = key
            n = n.parent

    def _split_members(self, node: Node) -> Node:
        """Order-preserving split: first half stays, second half moves."""
        if node.is_leaf:
            members = sorted(node.entries or [], key=self.entry_key)
            half = len(members) // 2
            node.entries = members[:half]
            sibling = self._new_leaf(members[half:])
        else:
            members = sorted(node.children or [], key=lambda c: c.lhv)
            half = len(members) // 2
            node.children = members[:half]
            sibling = self._new_internal(members[half:])
        node.recompute_mbr()
        node.recompute_count()
        sibling.recompute_count()
        if node.is_leaf:
            node.lhv = max((self.entry_key(e) for e in node.entries or []),
                           default=0)
            sibling.lhv = max(
                (self.entry_key(e) for e in sibling.entries or []),
                default=0)
        else:
            node.lhv = max((c.lhv for c in node.children or []), default=0)
            sibling.lhv = max((c.lhv for c in sibling.children or []),
                              default=0)
        self._invalidate_buffer(node)
        self._invalidate_buffer(sibling)
        return sibling

    def _split(self, node: Node) -> None:
        sibling = self._split_members(node)
        parent = node.parent
        if parent is None:
            new_root = self._new_internal([node, sibling])
            new_root.lhv = max(node.lhv, sibling.lhv)
            self.root = new_root
            self.root.parent = None
            self.height += 1
            return
        sibling.parent = parent
        # Keep the parent's children in lhv order so descents stay correct.
        children = parent.children or []
        idx = children.index(node)
        children.insert(idx + 1, sibling)
        if parent.members() > self.branch_capacity:
            self._split(parent)

    def validate(self) -> None:
        """Base R-tree invariants plus lhv domination."""
        super().validate()
        if self.root is not None:
            self._validate_lhv(self.root)

    def _validate_lhv(self, node: Node) -> int:
        """lhv must dominate every key below (it may be stale-high after
        deletions, which only affects insertion placement, not queries)."""
        if node.is_leaf:
            actual = max((self.entry_key(e) for e in node.entries or []),
                         default=0)
        else:
            actual = max(self._validate_lhv(c) for c in node.children or [])
        if node.lhv < actual:
            raise IndexError_(
                f"node {node.node_id} lhv {node.lhv} < max key {actual}")
        return actual
