"""R*-tree: the quality-optimised R-tree variant (Beckmann et al. 1990).

The base R-tree uses Guttman's quadratic split and least-enlargement
subtree choice.  The R*-tree improves node quality — tighter, less
overlapping MBRs — with three changes, all implemented here:

* **choose-subtree**: at the level above the leaves, pick the child
  whose *overlap* with its siblings grows least (ties: least area
  enlargement); higher up, least area enlargement as before;
* **split**: choose the split axis by minimum total margin over all
  candidate distributions, then the distribution with minimum overlap
  (ties: minimum combined area);
* **forced reinsertion**: the first time a *leaf* overflows during an
  insertion, remove the 30% of its entries farthest from the node's
  centre and reinsert them instead of splitting — entries migrate to
  better-fitting nodes over time.  (The original also reinserts at
  internal levels; leaf-level reinsertion captures most of the benefit
  and keeps the update path simple.)

Better MBRs matter to STORM because every sampler's cost is driven by
the canonical set: tighter nodes → more fully-contained nodes → smaller
``R_Q``.  The ablation benchmark measures exactly that.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.geometry import Rect
from repro.index.rtree import Entry, Node, RTree

__all__ = ["RStarTree"]

REINSERT_FRACTION = 0.3


class RStarTree(RTree):
    """R-tree with R*-style insertion heuristics.

    Bulk loading is inherited (STR already produces good packings); the
    R* machinery improves *dynamic* inserts, which is where Guttman
    trees degrade.
    """

    def __init__(self, dims: int, leaf_capacity: int = 64,
                 branch_capacity: int = 16, min_fill: float = 0.4):
        super().__init__(dims, leaf_capacity=leaf_capacity,
                         branch_capacity=branch_capacity,
                         min_fill=min_fill)
        # Levels that already forced a reinsert during the current
        # insertion (reinsert once per level per insertion, as in the
        # original paper).
        self._reinserted_levels: set[int] = set()
        self._in_reinsert = False

    # ------------------------------------------------------------------
    # choose subtree
    # ------------------------------------------------------------------

    def _choose_leaf(self, entry: Entry) -> Node:
        node = self.root
        assert node is not None
        point_rect = Rect.from_point(entry.point)
        while not node.is_leaf:
            children = node.children or []
            if children and children[0].is_leaf:
                node = self._least_overlap_child(children, point_rect)
            else:
                node = self._least_enlargement_child(children,
                                                     point_rect)
        return node

    @staticmethod
    def _least_enlargement_child(children: Sequence[Node],
                                 rect: Rect) -> Node:
        best = None
        best_key = None
        for child in children:
            key = (child.mbr.enlargement(rect), child.mbr.area())
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    @staticmethod
    def _least_overlap_child(children: Sequence[Node],
                             rect: Rect) -> Node:
        best = None
        best_key = None
        for child in children:
            grown = child.mbr.union(rect)
            overlap_delta = 0.0
            for other in children:
                if other is child:
                    continue
                before = child.mbr.intersection(other.mbr)
                after = grown.intersection(other.mbr)
                overlap_delta += ((after.area() if after else 0.0)
                                  - (before.area() if before else 0.0))
            key = (overlap_delta, child.mbr.enlargement(rect),
                   child.mbr.area())
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # overflow: forced reinsert, then R* split
    # ------------------------------------------------------------------

    def insert(self, item_id: int, point) -> None:
        """R* insert: resets the once-per-level reinsertion guard."""
        self._reinserted_levels = set()
        super().insert(item_id, point)

    def _level_of(self, node: Node) -> int:
        level = 0
        n = node
        while n.parent is not None:
            n = n.parent
            level += 1
        return level

    def _split(self, node: Node) -> None:
        level = self._level_of(node)
        can_reinsert = (node.is_leaf and not self._in_reinsert
                        and node.parent is not None
                        and level not in self._reinserted_levels)
        if can_reinsert:
            self._reinserted_levels.add(level)
            self._force_reinsert(node)
            if node.members() <= self.leaf_capacity:
                return
        self._rstar_split(node)

    def _force_reinsert(self, node: Node) -> None:
        """Remove the farthest-from-centre entries and reinsert them."""
        entries = node.entries or []
        center = node.mbr.center
        ordered = sorted(
            entries,
            key=lambda e: -sum((c - p) ** 2
                               for c, p in zip(center, e.point)))
        count = max(1, int(len(ordered) * REINSERT_FRACTION))
        evicted = ordered[:count]
        node.entries = ordered[count:]
        node.recompute_mbr()
        node.recompute_count()
        self._invalidate_buffer(node)
        # Shrink ancestor counts/MBRs for the removed entries.
        ancestor = node.parent
        while ancestor is not None:
            ancestor.count -= len(evicted)
            ancestor.recompute_mbr()
            self._invalidate_buffer(ancestor)
            ancestor = ancestor.parent
        self._in_reinsert = True
        try:
            for entry in evicted:
                self.size -= 1  # insert() re-adds it
                super().insert(entry.item_id, entry.point)
        finally:
            self._in_reinsert = False

    def _rstar_split(self, node: Node) -> None:
        sibling = self._split_members(node)
        parent = node.parent
        if parent is None:
            new_root = self._new_internal([node, sibling])
            self.root = new_root
            self.root.parent = None
            self.height += 1
            return
        sibling.parent = parent
        parent.children.append(sibling)  # type: ignore[union-attr]
        if parent.members() > self.branch_capacity:
            self._split(parent)

    def _split_members(self, node: Node) -> Node:
        if node.is_leaf:
            items = list(node.entries or [])
            rect_of = lambda e: Rect.from_point(e.point)  # noqa: E731
            minimum = self.min_leaf
        else:
            items = list(node.children or [])
            rect_of = lambda n: n.mbr  # noqa: E731
            minimum = self.min_branch
        group_a, group_b = _rstar_distribution(items, rect_of, minimum,
                                               self.dims)
        if node.is_leaf:
            node.entries = group_a
            sibling = self._new_leaf(group_b)
        else:
            node.children = group_a
            sibling = self._new_internal(group_b)
            for c in group_b:
                c.parent = sibling
        node.recompute_mbr()
        node.recompute_count()
        sibling.recompute_count()
        self._invalidate_buffer(node)
        self._invalidate_buffer(sibling)
        return sibling


def _prefix_unions(rects: list[Rect]) -> list[Rect]:
    out = []
    acc = rects[0]
    for r in rects:
        acc = acc.union(r)
        out.append(acc)
    return out


def _rstar_distribution(items: list, rect_of, minimum: int, dims: int
                        ) -> tuple[list, list]:
    """R* split: margin-minimising axis, overlap-minimising cut.

    Prefix/suffix MBR arrays make each candidate cut O(1), so a split
    costs O(dims · n log n) overall.
    """
    n = len(items)
    minimum = min(minimum, n // 2)
    best_axis = 0
    best_margin = math.inf
    for axis in range(dims):
        margin = 0.0
        for ordered in _axis_orders(items, rect_of, axis):
            rects = [rect_of(i) for i in ordered]
            prefix = _prefix_unions(rects)
            suffix = _prefix_unions(rects[::-1])[::-1]
            for cut in range(minimum, n - minimum + 1):
                margin += (prefix[cut - 1].margin()
                           + suffix[cut].margin())
        if margin < best_margin:
            best_margin = margin
            best_axis = axis
    best_key = None
    best_split: tuple[list, list] | None = None
    for ordered in _axis_orders(items, rect_of, best_axis):
        rects = [rect_of(i) for i in ordered]
        prefix = _prefix_unions(rects)
        suffix = _prefix_unions(rects[::-1])[::-1]
        for cut in range(minimum, n - minimum + 1):
            left_rect = prefix[cut - 1]
            right_rect = suffix[cut]
            inter = left_rect.intersection(right_rect)
            key = (inter.area() if inter else 0.0,
                   left_rect.area() + right_rect.area())
            if best_key is None or key < best_key:
                best_key = key
                best_split = (ordered[:cut], ordered[cut:])
    assert best_split is not None
    return best_split


def _axis_orders(items: list, rect_of, axis: int) -> list[list]:
    """The two R* sort orders on one axis (by lower and upper bound)."""
    by_lower = sorted(items, key=lambda it: rect_of(it).lo[axis])
    by_upper = sorted(items, key=lambda it: rect_of(it).hi[axis])
    return [by_lower, by_upper]
