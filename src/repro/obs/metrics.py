"""In-process metrics registry: counters, gauges and quantile histograms.

STORM's progressive answers are only trustworthy when the work behind
them is visible — samples drawn, blocks touched, messages exchanged.
This module is the zero-dependency substrate those signals land on:

* instruments are named and carry sorted ``key=value`` labels
  (``dataset``, ``sampler``, ``worker`` ...), so one registry can hold
  every layer's tallies side by side;
* :class:`Histogram` is a deterministic log-bucketed quantile sketch:
  the exact aggregates (count/sum/min/max) of the old four-field
  summary are kept, and bucket counts additionally give p50/p90/p99
  within a fixed ~19% relative bucket width, plus a sliding
  time-window view ("latency right now" vs "this whole session");
* :meth:`MetricsRegistry.snapshot` renders a deterministic, plain-dict
  view (sorted names, sorted labels) so tests and the JSONL exporter
  see stable output;
* :class:`NullRegistry` is the opt-out: every instrument it hands back
  is a shared no-op, and ``registry.enabled`` lets hot paths skip even
  the instrument lookup, so untraced runs pay a single attribute read.

The registry is thread-safe so background threads (the sampling
profiler, the metrics endpoint, watch-mode dashboards) can publish and
read concurrently: instrument get-or-create takes a single lock (with
a lock-free hit path), while the hot-path mutators — ``Counter.inc``,
``Gauge.set``/``add``, ``Histogram.observe`` — stay lock-free; under
CPython each is a handful of GIL-atomic operations on one instrument.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "NULL_REGISTRY", "metric_key",
           "escape_label_value"]


def escape_label_value(value: object) -> str:
    """One label value, escaped for use inside a metric key.

    ``,`` and ``=`` are the key's own structure and ``}`` closes it, so
    raw occurrences in a *value* would collide distinct instruments
    (``{a=1,b=2}`` vs ``{a=1\\,b=2}``).  Backslash-escaping keeps every
    distinct (name, labels) pair a distinct key.
    """
    text = str(value)
    if ("\\" in text or "," in text or "=" in text or "}" in text
            or "{" in text):
        text = (text.replace("\\", "\\\\").replace(",", "\\,")
                .replace("=", "\\=").replace("{", "\\{")
                .replace("}", "\\}"))
    return text


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Canonical ``name{k=v,...}`` identity of one instrument."""
    if not labels:
        return name
    inner = ",".join(f"{k}={escape_label_value(labels[k])}"
                     for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A value that can move both ways (sizes, heights, balances)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


# -- log-bucketed histogram --------------------------------------------

#: Bucket boundaries grow geometrically: 4 buckets per doubling keeps
#: any reported quantile within ~19% of the true order statistic.
_GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(_GROWTH)

#: Sliding-window bookkeeping: observations land in fixed wall-clock
#: slices; a window view merges the slices that cover the asked-for
#: horizon.  12 retained slices of 5s cover the default 60s window.
WINDOW_SLICE_SECONDS = 5.0
WINDOW_SLICES = 12
DEFAULT_WINDOW_SECONDS = WINDOW_SLICE_SECONDS * WINDOW_SLICES


def bucket_index(value: float) -> int:
    """Deterministic bucket for a positive value (upper bound
    ``_GROWTH ** index``); same float always lands in the same bucket."""
    i = math.ceil(math.log(value) / _LOG_GROWTH)
    # Guard the boundary: float log noise must not push an exact power
    # into the bucket above (whose range it does not belong to).
    if _GROWTH ** (i - 1) >= value:
        i -= 1
    return i


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of a bucket index."""
    return _GROWTH ** index


class _Slice:
    """One time slice of observations (for the sliding window)."""

    __slots__ = ("slice_id", "count", "total", "min", "max", "buckets",
                 "non_positive")

    def __init__(self, slice_id: int) -> None:
        self.slice_id = slice_id
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: dict[int, int] = {}
        self.non_positive = 0


def _quantile(q: float, count: int, non_positive: int,
              buckets: dict[int, int], lo: float, hi: float) -> float:
    """The q-quantile from bucket counts, clamped to [lo, hi].

    Deterministic: walk buckets in bound order and report the first
    bucket whose cumulative count reaches ``q * count``; the bucket's
    upper bound (clamped to the exact min/max) is the estimate.
    """
    rank = q * count
    seen = non_positive
    if seen >= rank and seen:
        return max(lo, min(0.0, hi))
    for index in sorted(buckets):
        seen += buckets[index]
        if seen >= rank:
            return max(lo, min(bucket_upper_bound(index), hi))
    return hi


class Histogram:
    """Streaming summary: exact aggregates plus quantile buckets.

    The four running aggregates (count/sum/min/max) are exact and
    O(1), as before; observations additionally land in deterministic
    log-spaced buckets (see :func:`bucket_index`) so p50/p90/p99 are
    available without storing samples, and in per-time-slice buckets
    so :meth:`window_summary` can answer "latency over the last minute"
    separately from the whole-session view.
    """

    __slots__ = ("count", "total", "min", "max", "buckets",
                 "non_positive", "clock", "_slices")

    def __init__(self, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: bucket index -> observation count (positive values only).
        self.buckets: dict[int, int] = {}
        #: observations <= 0 (durations normally; kept out of the log).
        self.non_positive = 0
        self.clock = clock
        self._slices: deque[_Slice] = deque(maxlen=WINDOW_SLICES)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            index = bucket_index(value)
            buckets = self.buckets
            buckets[index] = buckets.get(index, 0) + 1
        else:
            index = None
            self.non_positive += 1
        # Window bookkeeping: append-only per slice; readers tolerate
        # the (benign, GIL-serialised) race of two threads appending
        # the same slice id — window merges filter by id, not position.
        slice_id = int(self.clock() / WINDOW_SLICE_SECONDS)
        slices = self._slices
        cur = slices[-1] if slices else None
        if cur is None or cur.slice_id != slice_id:
            cur = _Slice(slice_id)
            slices.append(cur)
        cur.count += 1
        cur.total += value
        if value < cur.min:
            cur.min = value
        if value > cur.max:
            cur.max = value
        if index is None:
            cur.non_positive += 1
        else:
            cur.buckets[index] = cur.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic q-quantile estimate over the whole session
        (within one log bucket, ~19%, of the true order statistic)."""
        if not self.count:
            return 0.0
        return _quantile(q, self.count, self.non_positive,
                         self.buckets, self.min, self.max)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Sorted (upper_bound, count) pairs (non-positive under 0.0)."""
        out: list[tuple[float, int]] = []
        if self.non_positive:
            out.append((0.0, self.non_positive))
        out.extend((bucket_upper_bound(i), self.buckets[i])
                   for i in sorted(self.buckets))
        return out

    def summary(self) -> dict[str, object]:
        """Plain-dict view (min/max/quantiles omitted while empty)."""
        out: dict[str, object] = {"count": self.count,
                                  "sum": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.mean
            out["p50"] = self.quantile(0.50)
            out["p90"] = self.quantile(0.90)
            out["p99"] = self.quantile(0.99)
            out["buckets"] = [[le, n] for le, n in self.bucket_counts()]
        return out

    def window_summary(self, seconds: float = DEFAULT_WINDOW_SECONDS
                       ) -> dict[str, object]:
        """Same shape as :meth:`summary`, over the trailing window.

        Merges the retained slices whose id falls inside the asked-for
        horizon ("latency right now"); an idle window reports count 0.
        """
        oldest = int((self.clock() - seconds) / WINDOW_SLICE_SECONDS)
        count = 0
        total = 0.0
        lo, hi = float("inf"), float("-inf")
        non_positive = 0
        buckets: dict[int, int] = {}
        for sl in list(self._slices):
            if sl.slice_id < oldest:
                continue
            count += sl.count
            total += sl.total
            lo = min(lo, sl.min)
            hi = max(hi, sl.max)
            non_positive += sl.non_positive
            for index, n in sl.buckets.items():
                buckets[index] = buckets.get(index, 0) + n
        out: dict[str, object] = {"count": count, "sum": total}
        if count:
            out["min"] = lo
            out["max"] = hi
            out["mean"] = total / count
            for name, q in (("p50", 0.50), ("p90", 0.90),
                            ("p99", 0.99)):
                out[name] = _quantile(q, count, non_positive, buckets,
                                      lo, hi)
        return out


class MetricsRegistry:
    """Named, labelled instruments with a deterministic snapshot.

    Get-or-create is serialised by one lock (the hit path reads the
    dict lock-free first); increments on the returned instruments are
    lock-free.  ``instruments()`` exposes the structured
    (kind, name, labels) view the Prometheus renderer needs.
    """

    #: Hot paths test this before even fetching an instrument.
    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: key -> (name, labels) for every instrument ever created.
        self._meta: dict[str, tuple[str, dict[str, str]]] = {}

    # -- instrument lookup (get-or-create) ----------------------------

    def _get(self, store: dict, factory, name: str,
             labels: dict[str, object]):
        key = metric_key(name, labels)
        inst = store.get(key)
        if inst is None:
            with self._lock:
                inst = store.get(key)
                if inst is None:
                    inst = store[key] = factory()
                    self._meta[key] = (name, {
                        k: str(labels[k]) for k in sorted(labels)})
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(self._histograms,
                         lambda: Histogram(clock=self.clock),
                         name, labels)

    # -- snapshot / structured iteration / reset ----------------------

    def snapshot(self) -> dict[str, dict]:
        """Deterministic plain-dict view of every instrument.

        Safe to call from any thread: keys are copied under the GIL
        and values read through ``get`` so a concurrent get-or-create
        never trips the iteration.
        """
        counters = self._counters
        gauges = self._gauges
        histograms = self._histograms
        return {
            "counters": {k: counters[k].value
                         for k in sorted(counters)},
            "gauges": {k: gauges[k].value for k in sorted(gauges)},
            "histograms": {k: histograms[k].summary()
                           for k in sorted(histograms)},
        }

    def instruments(self):
        """Yield (kind, name, labels, instrument), sorted by key.

        The structured companion to :meth:`snapshot`, used by the
        Prometheus text renderer (which needs labels un-flattened).
        """
        for kind, store in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            for key in sorted(store):
                name, labels = self._meta[key]
                yield kind, name, labels, store[key]

    def window_snapshot(self, seconds: float = DEFAULT_WINDOW_SECONDS
                        ) -> dict[str, dict]:
        """Histogram window views only ("latency right now")."""
        histograms = self._histograms
        return {k: histograms[k].window_summary(seconds)
                for k in sorted(histograms)}

    def reset(self) -> None:
        """Drop every instrument (a fresh registry, same identity)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._meta.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """The default: accepts every call, records nothing."""

    enabled = False

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: object) -> Histogram:
        return _NULL_HISTOGRAM


NULL_REGISTRY = NullRegistry()
