"""In-process metrics registry: counters, gauges and histograms.

STORM's progressive answers are only trustworthy when the work behind
them is visible — samples drawn, blocks touched, messages exchanged.
This module is the zero-dependency substrate those signals land on:

* instruments are named and carry sorted ``key=value`` labels
  (``dataset``, ``sampler``, ``worker`` ...), so one registry can hold
  every layer's tallies side by side;
* :meth:`MetricsRegistry.snapshot` renders a deterministic, plain-dict
  view (sorted names, sorted labels) so tests and the JSONL exporter
  see stable output;
* :class:`NullRegistry` is the opt-out: every instrument it hands back
  is a shared no-op, and ``registry.enabled`` lets hot paths skip even
  the instrument lookup, so untraced runs pay a single attribute read.

The registry is deliberately process-local and unsynchronised — the
reproduction is single-threaded, and keeping ``inc()`` a bare integer
add is what makes always-on instrumentation affordable.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "NULL_REGISTRY", "metric_key"]


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Canonical ``name{k=v,...}`` identity of one instrument."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A value that can move both ways (sizes, heights, balances)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Streaming summary of observations: count/sum/min/max.

    Quantile sketches are overkill for the dashboard's needs; the four
    running aggregates are exact, O(1), and deterministic.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """Plain-dict view (min/max omitted while empty)."""
        out: dict[str, float] = {"count": self.count, "sum": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.mean
        return out


class MetricsRegistry:
    """Named, labelled instruments with a deterministic snapshot."""

    #: Hot paths test this before even fetching an instrument.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument lookup (get-or-create) ----------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = metric_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    # -- snapshot / reset ---------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Deterministic plain-dict view of every instrument."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].summary()
                           for k in sorted(self._histograms)},
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh registry, same identity)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """The default: accepts every call, records nothing."""

    enabled = False

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: object) -> Histogram:
        return _NULL_HISTOGRAM


NULL_REGISTRY = NullRegistry()
