"""repro.obs — unified observability: metrics, traces, exporters.

One :class:`Observability` object bundles the two write paths every
layer shares:

* ``obs.registry`` — the :class:`~repro.obs.metrics.MetricsRegistry`
  (counters/gauges/histograms with labels);
* ``obs.tracer`` — the :class:`~repro.obs.trace.Tracer` building
  per-query span trees that carry ``CostCounter``/``BlockStats``/
  ``NetworkStats`` deltas.

The default everywhere is :data:`NULL_OBS`, whose registry and tracer
are shared no-ops: instrumented code pays one attribute read plus one
``enabled`` check, so the sampler hot paths stay benchmark-neutral
until a caller opts in with ``Observability()`` (live) — the CLI's
``--trace``/``stats`` modes, the EXPLAIN report and the bench harness
all do.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.endpoint import MetricsEndpoint
from repro.obs.export import (metrics_record, render_dashboard,
                              span_records, write_jsonl)
from repro.obs.explain import phase_costs, render_explain
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, NullRegistry,
                               NULL_REGISTRY, escape_label_value,
                               metric_key)
from repro.obs.profile import SamplingProfiler, profiled
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import (NULL_TRACER, NullTracer, Span,
                             TraceContext, Tracer)

__all__ = ["Observability", "NULL_OBS", "MetricsRegistry",
           "NullRegistry", "NULL_REGISTRY", "Counter", "Gauge",
           "Histogram", "metric_key", "escape_label_value", "Tracer",
           "NullTracer", "NULL_TRACER", "Span", "TraceContext",
           "span_records", "metrics_record", "write_jsonl",
           "render_dashboard", "render_explain", "phase_costs",
           "SamplingProfiler", "profiled", "render_prometheus",
           "MetricsEndpoint"]


class Observability:
    """A registry + tracer pair threaded through the whole stack."""

    __slots__ = ("registry", "tracer")

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 clock: Callable[[], float] | None = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None \
            else (Tracer(clock=clock) if clock is not None else Tracer())

    @property
    def enabled(self) -> bool:
        """Whether either write path records anything."""
        return self.registry.enabled or self.tracer.enabled

    def reset(self) -> None:
        """Clear both the registry and the tracer."""
        self.registry.reset()
        self.tracer.reset()

    def __repr__(self) -> str:
        state = "live" if self.enabled else "null"
        return f"<Observability {state}>"


#: The shared opt-out: records nothing, costs a guard.
NULL_OBS = Observability(NULL_REGISTRY, NULL_TRACER)
