"""Exporters: JSONL trace/metric records and a text dashboard.

Two consumers, two formats:

* machines get JSONL — one self-describing object per line, either
  ``{"type": "span", ...}`` (a flattened span with ``parent_id`` links
  and its cost/io/net deltas) or ``{"type": "metrics", ...}`` (a
  registry snapshot), appendable across queries and trivially
  greppable/`jq`-able;
* humans get :func:`render_dashboard` — the registry snapshot as the
  same fixed-width tables the bench harness prints, one section per
  instrument kind.

Both read the *same* registry/tracer objects the engine writes, so the
CLI's ``--trace`` file, its ``stats`` subcommand and the EXPLAIN report
can never disagree about what a query cost.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = ["span_records", "metrics_record", "write_jsonl",
           "render_dashboard"]


def span_records(roots: Iterable[Span]) -> list[dict]:
    """Flatten span trees into JSON-ready records, parents first."""
    rows: list[dict] = []
    for root in roots:
        for row in root.flatten():
            row["type"] = "span"
            rows.append(row)
    return rows


def metrics_record(registry: MetricsRegistry) -> dict:
    """One JSON-ready record holding a registry snapshot."""
    return {"type": "metrics", **registry.snapshot()}


def write_jsonl(out: IO[str], roots: Iterable[Span] = (),
                registry: MetricsRegistry | None = None) -> int:
    """Append spans (and optionally a metrics snapshot) as JSONL.

    Returns the number of lines written.  ``out`` is any text file
    object; the caller owns opening/closing it so one file can collect
    many queries.
    """
    lines = 0
    for row in span_records(roots):
        out.write(json.dumps(row, sort_keys=True, default=str) + "\n")
        lines += 1
    if registry is not None and registry.enabled:
        out.write(json.dumps(metrics_record(registry), sort_keys=True,
                             default=str) + "\n")
        lines += 1
    return lines


# -- text dashboard ----------------------------------------------------


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_dashboard(registry: MetricsRegistry,
                     title: str = "storm metrics") -> str:
    """The registry snapshot as aligned text tables."""
    snap = registry.snapshot()
    lines = [f"== {title} =="]
    for kind in ("counters", "gauges"):
        section = snap.get(kind, {})
        if not section:
            continue
        lines.append(f"-- {kind} --")
        width = max(len(name) for name in section)
        for name in sorted(section):
            lines.append(f"  {name:<{width}}  {_fmt(section[name])}")
    hists = snap.get("histograms", {})
    if hists:
        lines.append("-- histograms --")
        width = max(len(name) for name in hists)
        for name in sorted(hists):
            s = hists[name]
            detail = f"count={_fmt(s['count'])}"
            if s["count"]:
                detail += (f" mean={s['mean']:.6g}"
                           f" min={s['min']:.6g} max={s['max']:.6g}"
                           f" p50={s['p50']:.6g} p90={s['p90']:.6g}"
                           f" p99={s['p99']:.6g}")
            lines.append(f"  {name:<{width}}  {detail}")
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)
