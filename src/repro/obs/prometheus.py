"""Prometheus text exposition of a :class:`MetricsRegistry`.

Renders the registry's instruments in the Prometheus text format
(version 0.0.4) so a stock Prometheus/Grafana stack — or plain
``curl`` — can scrape a running STORM process.  stdlib only; the
renderer walks :meth:`MetricsRegistry.instruments` so labels stay
structured (never re-parsed out of flattened keys).

Mapping choices:

* metric names are sanitised to ``[a-zA-Z0-9_:]`` (dots become
  underscores), so ``storm.sample.latency_seconds`` scrapes as
  ``storm_sample_latency_seconds``;
* counters render as ``name_total``; gauges render bare;
* histograms render cumulative ``_bucket{le=...}`` lines from the
  log-bucket counts, plus ``_sum`` / ``_count`` and non-standard-but-
  conventional ``{quantile=...}`` gauge lines for p50/p90/p99 so the
  scrape answers tail-latency questions without PromQL;
* output is deterministic for a given registry state (sorted names
  and labels), which the endpoint tests rely on.
"""

from __future__ import annotations

import math

from repro.obs.metrics import MetricsRegistry

__all__ = ["render_prometheus", "sanitize_metric_name"]

_QUANTILES = (("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99))


def sanitize_metric_name(name: str) -> str:
    """A legal Prometheus metric name (dots/dashes -> underscores)."""
    out = []
    for i, ch in enumerate(name):
        if ch.isalnum() or ch in "_:":
            out.append(ch)
        else:
            out.append("_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels(labels: dict[str, str], extra: "tuple[str, str] | None" = None
            ) -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra is not None:
        parts.append(f'{extra[0]}="{_escape(extra[1])}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def _number(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus exposition text."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for kind, raw_name, labels, inst in registry.instruments():
        name = sanitize_metric_name(raw_name)
        if kind == "counter":
            pname = name if name.endswith("_total") else name + "_total"
            header(pname, "counter")
            lines.append(
                f"{pname}{_labels(labels)} {_number(inst.value)}")
        elif kind == "gauge":
            header(name, "gauge")
            lines.append(
                f"{name}{_labels(labels)} {_number(inst.value)}")
        else:  # histogram
            header(name, "histogram")
            cumulative = 0
            for le, n in inst.bucket_counts():
                cumulative += n
                lines.append(
                    f"{name}_bucket{_labels(labels, ('le', _number(le)))}"
                    f" {cumulative}")
            lines.append(
                f"{name}_bucket{_labels(labels, ('le', '+Inf'))}"
                f" {inst.count}")
            lines.append(
                f"{name}_sum{_labels(labels)} {_number(inst.total)}")
            lines.append(
                f"{name}_count{_labels(labels)} {inst.count}")
            if inst.count:
                for qname, q in _QUANTILES:
                    lines.append(
                        f"{name}"
                        f"{_labels(labels, ('quantile', qname))}"
                        f" {_number(inst.quantile(q))}")
    return "\n".join(lines) + "\n" if lines else ""
