"""Live telemetry endpoint: /metrics, /metrics.json and /health.

A stdlib ``http.server`` running on a daemon thread, so any STORM
process — the CLI REPL, a bench run, a soak loop — can expose its
:class:`MetricsRegistry` while the work is still going.  Routes:

* ``/metrics`` — Prometheus text format (see
  :mod:`repro.obs.prometheus`): histogram buckets, quantile lines,
  counters as ``_total``;
* ``/metrics.json`` — the registry's deterministic
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, plus the
  sliding-window histogram view under ``"window"``;
* ``/health`` — a JSON status document assembled from an injectable
  ``health`` callable (the CLI wires in WAL/recovery/cluster coverage
  state); always answers 200 with ``"status": "ok"`` or 503 with
  ``"status": "degraded"`` so load-balancer checks need no parsing.

The endpoint publishes its own traffic as ``storm.http.requests``
(labelled by route) into the same registry it serves — scraping is
work too, and it should be visible on the dashboard it feeds.  Binding
to port 0 picks an ephemeral port (tests); ``start()`` returns only
after the socket is bound, so ``endpoint.port`` is always real.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import render_prometheus

__all__ = ["MetricsEndpoint"]

_ROUTES = ("/metrics", "/metrics.json", "/health")


class _Handler(BaseHTTPRequestHandler):
    """One request; all state lives on the server object."""

    server_version = "storm-obs/1.0"

    # Server-attached attributes (set by MetricsEndpoint.start):
    #   server.registry, server.health_fn

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        registry = self.server.registry
        if path == "/metrics":
            body = render_prometheus(registry).encode()
            self._reply(200, body,
                        "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/metrics.json":
            doc = {"snapshot": registry.snapshot(),
                   "window": registry.window_snapshot()}
            self._reply(200, _json_bytes(doc), "application/json")
        elif path == "/health":
            doc = self._health_doc()
            code = 200 if doc.get("status") == "ok" else 503
            self._reply(code, _json_bytes(doc), "application/json")
        else:
            self._reply(404, b'{"error": "not found"}\n',
                        "application/json")
            return
        if registry.enabled:
            registry.counter("storm.http.requests", route=path).inc()

    def _health_doc(self) -> dict:
        health_fn = self.server.health_fn
        if health_fn is None:
            return {"status": "ok"}
        try:
            detail = health_fn()
        except Exception as exc:  # health probe must never 500
            return {"status": "degraded",
                    "error": f"{type(exc).__name__}: {exc}"}
        doc = dict(detail) if detail else {}
        doc.setdefault("status", "ok")
        return doc

    def _reply(self, code: int, body: bytes, ctype: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        pass  # the request counter is the access log


def _json_bytes(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True, default=str) + "\n").encode()


class MetricsEndpoint:
    """The registry's HTTP face, on a background daemon thread.

    ``health`` is a zero-arg callable returning a JSON-ready dict; a
    ``"status"`` key other than ``"ok"`` turns ``/health`` into a 503.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 host: str = "127.0.0.1", port: int = 0,
                 health: "Callable[[], dict] | None" = None) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.health = health
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsEndpoint":
        if self._server is not None:
            raise RuntimeError("endpoint already started")
        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.daemon_threads = True
        server.registry = self.registry
        server.health_fn = self.health
        self.port = server.server_address[1]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="storm-metrics-endpoint",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join()

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
