"""Rendering of the EXPLAIN report: plan, phases and outcome.

The optimizer's :meth:`~repro.core.optimizer.Plan.explain` answers *why
this sampler*; this module answers the other two questions a user of a
progressive system has — *where did the time go* (per-phase simulated
seconds from the query's span tree, under the same
:class:`~repro.index.cost.CostModel` the optimizer scored with) and
*why did it stop* (the session's stop-condition outcome and final
estimate).  The report is assembled from the same trace spans the JSONL
exporter writes, so EXPLAIN never disagrees with the trace file.
"""

from __future__ import annotations

from repro.index.cost import CostModel, DEFAULT_COST_MODEL
from repro.obs.trace import Span

__all__ = ["phase_costs", "render_explain"]


def phase_costs(root: Span,
                model: CostModel = DEFAULT_COST_MODEL
                ) -> list[tuple[str, float, object]]:
    """(name, simulated seconds, cost delta) per cost-bearing span."""
    rows = []
    for span in root.walk():
        if span.cost is not None:
            rows.append((span.name, model.simulated_seconds(span.cost),
                         span.cost))
    return rows


def render_explain(plan_text: str, root: Span | None, final,
                   model: CostModel = DEFAULT_COST_MODEL,
                   caches: "dict[str, tuple[int, int]] | None" = None,
                   index: "dict[str, object] | None" = None,
                   faults: "dict[str, object] | None" = None,
                   durability: "dict[str, object] | None" = None
                   ) -> str:
    """The full EXPLAIN report for one executed query.

    ``plan_text`` is the optimizer's scoring (or a note that the method
    was forced), ``root`` the query's root span (None when tracing was
    off), ``final`` the session's last
    :class:`~repro.core.session.ProgressPoint`.  ``caches`` maps a
    cache name (e.g. ``"canonical-set"``, ``"dfs-block"``) to its
    (hits, misses) delta for this query; caches with zero lookups are
    skipped.  ``faults`` maps a fault/recovery event name (e.g.
    ``"retries"``, ``"stream failovers"``, ``"degraded workers"``) to
    its count for this query; an all-zero dict is skipped entirely so
    fault-free EXPLAIN output is unchanged.  ``durability`` maps a
    WAL/recovery event name (e.g. ``"wal appends"``, ``"recovery
    records replayed"``) to its cumulative count — these are
    engine-lifetime tallies (recovery runs at load time, not per
    query) and, like faults, an all-zero dict is skipped.  ``index``
    describes the leaf storage the query scanned (columnar block vs
    record-list) and this query's vectorized-filter activity; falsy
    rows are skipped like the other tables.
    """
    lines = ["plan:"]
    lines.extend("  " + line for line in plan_text.splitlines())
    if root is not None:
        rows = phase_costs(root, model)
        lines.append("phases (simulated seconds, disk cost model):")
        total = 0.0
        width = max((len(name) for name, _, _ in rows), default=5)
        for name, seconds, cost in rows:
            total += seconds
            lines.append(
                f"  {name:<{width}}  {seconds:>10.6f}s"
                f"  reads={cost.node_reads}"
                f" (random={cost.random_reads},"
                f" seq={cost.sequential_reads})"
                f" scanned={cost.leaf_entries_scanned}"
                f" samples={cost.samples_emitted}")
        lines.append(f"  {'total':<{width}}  {total:>10.6f}s")
        if root.net is not None:
            lines.append(
                f"network: messages={root.net.messages}"
                f" payload_bytes={root.net.payload_bytes}")
        pulls = root.find_all("worker_pull")
        if pulls:
            lines.append(f"workers (trace {root.trace_id}):")
            width = max(len(str(p.attrs.get("worker", "?")))
                        for p in pulls)
            for pull in pulls:
                a = pull.attrs
                row = (f"  {str(a.get('worker', '?')):<{width}}"
                       f"  draws={a.get('draws', 0)}"
                       f" batches={a.get('batches', 0)}"
                       f" retries={a.get('retries', 0)}"
                       f" failovers={a.get('failovers', 0)}"
                       f" bytes={a.get('bytes', 0)}")
                served_by = a.get("served_by")
                if served_by is not None \
                        and served_by != a.get("worker"):
                    row += f" (via {served_by})"
                lines.append(row)
    if caches:
        rows = [(name, hits, misses)
                for name, (hits, misses) in caches.items()
                if hits + misses > 0]
        if rows:
            lines.append("caches:")
            width = max(len(name) for name, _, _ in rows)
            for name, hits, misses in rows:
                rate = hits / (hits + misses)
                lines.append(
                    f"  {name:<{width}}  hits={hits} misses={misses}"
                    f" hit_rate={rate:.1%}")
    for title, table in (("index:", index),
                         ("faults:", faults),
                         ("durability:", durability)):
        if not table:
            continue
        rows = [(name, value) for name, value in table.items()
                if value]
        if rows:
            lines.append(title)
            width = max(len(name) for name, _ in rows)
            for name, value in rows:
                if isinstance(value, float):
                    lines.append(f"  {name:<{width}}  {value:.6g}")
                else:
                    lines.append(f"  {name:<{width}}  {value}")
    if final is not None:
        est = final.estimate
        outcome = f"stop: {final.reason or 'user stop'}"
        outcome += f" (k={est.k} of q={est.q}"
        if est.q:
            outcome += f", {est.k / est.q:.2%} of range"
        coverage = getattr(final, "coverage", 1.0)
        if coverage < 1.0:
            outcome += f", coverage {coverage:.2%}"
        outcome += ")"
        lines.append(outcome)
        value = f"estimate: value={est.value!r}"
        if est.interval is not None:
            value += (f" ci=[{est.interval.lo:.6g},"
                      f" {est.interval.hi:.6g}]"
                      f"@{est.interval.level:.0%}")
        if est.exact:
            value += " (exact)"
        lines.append(value)
    return "\n".join(lines)
