"""Sampling profiler: periodic stack snapshots, collapsed-stack output.

STORM's latency budget lives or dies in a handful of hot loops (draw
batches, leaf scans, estimator absorption), and the quantile
histograms can say *that* p99 moved but not *why*.  This module is the
why: a background thread wakes at a configurable rate, snapshots every
other thread's Python stack via ``sys._current_frames()``, and
aggregates identical stacks into the flamegraph-standard collapsed
format — one ``frame;frame;...;frame count`` line per distinct stack,
root first — so a bench run can attach hotspot evidence
(``flamegraph.pl`` / speedscope read it directly).

Design points:

* **stdlib only, no tracing overhead** — the profiled code runs
  unmodified; cost is one stack walk per tick on the profiler thread
  (wall-clock sampling, so blocked threads are sampled too);
* **self-exclusion** — the profiler never samples its own thread, and
  it publishes only ``storm.profile.*`` metrics, so ``storm.*``
  engine counters and traced span deltas are never skewed by it
  (regression-tested);
* **deterministic aggregation** — ``collapsed()`` output is sorted by
  count (descending) then stack text, so repeated renders of one run
  are byte-identical.

Surfaces: ``SamplingProfiler`` (start/stop), the ``profiled()``
context manager used by the bench harnesses and the CLI ``--profile``
flag, which write ``*.collapsed`` files next to the bench JSON.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

__all__ = ["SamplingProfiler", "profiled"]

DEFAULT_HZ = 97.0  # prime-ish, dodges lockstep with periodic work


def _collapse(frame) -> str:
    """One thread's stack as ``module:function`` frames, root first."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Background wall-clock sampler of every other thread's stack.

    ``hz`` bounds the sampling rate (the wait is the tick floor; a
    slow stack walk just lowers the effective rate).  ``registry``
    (optional) receives ``storm.profile.samples`` / ``.stacks`` /
    ``.threads`` so profiler activity is visible on the dashboard and
    the metrics endpoint without touching any engine counter.
    """

    def __init__(self, hz: float = DEFAULT_HZ,
                 registry: "MetricsRegistry | None" = None):
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = hz
        self.registry = registry
        self.stacks: dict[str, int] = {}
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._elapsed: float | None = None

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="storm-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the profiler thread (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._elapsed is None and self._started_at is not None:
            self._elapsed = time.perf_counter() - self._started_at

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        registry = self.registry
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            self.samples += 1
            seen_threads = 0
            for tid, frame in frames.items():
                if tid == own:
                    continue
                seen_threads += 1
                stack = _collapse(frame)
                self.stacks[stack] = self.stacks.get(stack, 0) + 1
            if registry is not None and registry.enabled:
                registry.counter("storm.profile.samples").inc()
                registry.counter("storm.profile.stacks").inc(
                    seen_threads)
                registry.gauge("storm.profile.threads").set(
                    seen_threads)

    # -- output -------------------------------------------------------

    def collapsed(self) -> str:
        """The aggregate as collapsed-stack text (``a;b;c N`` lines),
        hottest stack first, byte-stable for a given aggregate."""
        rows = sorted(self.stacks.items(),
                      key=lambda item: (-item[1], item[0]))
        return "\n".join(f"{stack} {count}" for stack, count in rows)

    def write_collapsed(self, path: str) -> int:
        """Write the collapsed stacks to a file; returns line count."""
        text = self.collapsed()
        with open(path, "w") as f:
            if text:
                f.write(text + "\n")
        return len(self.stacks)

    def top_frames(self, n: int = 5) -> list[tuple[str, int]]:
        """The n hottest *leaf* frames (function-level hotspots):
        (frame, inclusive leaf sample count), hottest first."""
        leaves: dict[str, int] = {}
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        return sorted(leaves.items(),
                      key=lambda item: (-item[1], item[0]))[:n]

    def summary(self) -> dict[str, object]:
        """Plain-dict run summary (for bench JSON sidecars)."""
        out: dict[str, object] = {
            "hz": self.hz, "samples": self.samples,
            "distinct_stacks": len(self.stacks),
            "top_frames": [list(t) for t in self.top_frames()],
        }
        if self._elapsed is not None:
            out["seconds"] = round(self._elapsed, 4)
        return out


@contextmanager
def profiled(path: "str | None" = None, hz: float = DEFAULT_HZ,
             registry: "MetricsRegistry | None" = None):
    """``with profiled("out.collapsed") as prof:`` — profile the block.

    The profiler is started on entry and stopped on exit; when ``path``
    is given the collapsed stacks are written there (even if the block
    raises, so a crashed bench still leaves its evidence).
    """
    profiler = SamplingProfiler(hz=hz, registry=registry)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        if path is not None:
            profiler.write_collapsed(path)
