"""Hierarchical trace spans carrying per-phase cost deltas.

A query's I/O story crosses four accounting domains — the index
:class:`~repro.index.cost.CostCounter`, the DFS
``BlockStats``, the cluster ``NetworkStats`` and wall time — and each
lives on a different object.  A :class:`Span` stitches them together:
when a span opens it snapshots every *source* bound to it, and when it
closes it stores the delta, so one span tree shows exactly which phase
of which query paid which reads.

Sources are duck-typed: anything with ``snapshot()`` and
``delta_from(earlier)`` (``CostCounter``, ``NetworkStats``,
``BlockStats``) binds directly, and a zero-argument callable returning
such a snapshot (``SimulatedDFS.total_stats``) binds the same way.  No
storage or cluster module is imported here, which keeps ``repro.obs``
importable from every layer without cycles.

The tracer's clock is injectable (tests pin it); span ids are
sequential per tracer, so traces are deterministic under a fake clock.
:class:`NullTracer` is the default everywhere: ``begin`` hands back a
shared inert span and the whole trace machinery costs one method call.

**Distributed propagation.**  Every span carries a ``trace_id``: root
spans mint a fresh one, children inherit their parent's, so one query's
whole tree — including the coordinator-side ``worker_pull`` spans the
distributed sampler emits — shares a single id.  A span's
:meth:`Span.context` packages ``(trace_id, span_id)`` as a
:class:`TraceContext`, the value the coordinator sends across the
simulated wire so workers can tag their own per-pull accounting with
the originating trace (see ``repro.distributed.cluster.Worker``).

**Threads.**  The open-span stack is thread-local: spans begun on a
background thread (the profiler, the metrics endpoint) start their own
roots instead of grafting into another thread's open query tree, so a
traced query's leaf deltas keep summing exactly to its session totals
no matter what other threads are doing.  Root/ids bookkeeping is
lock-protected.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["Span", "TraceContext", "Tracer", "NullTracer",
           "NULL_TRACER"]

#: Process-wide trace-id source: deterministic under PYTHONHASHSEED
#: (sequential), unique across tracers within one process.
_TRACE_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return f"{next(_TRACE_IDS):08x}"


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagatable identity of one span: what crosses the wire."""

    trace_id: str
    span_id: int


def _snap(source):
    """Opening snapshot of a source (object or zero-arg callable)."""
    return source() if callable(source) else source.snapshot()


def _delta(source, before):
    """Delta accumulated on a source since ``before``."""
    current = source() if callable(source) else source
    return current.delta_from(before)


class Span:
    """One timed phase, with children and per-source deltas.

    ``deltas`` maps the binding name (``"cost"``, ``"io"``, ``"net"``,
    ...) to the delta object recorded at close.  ``cost``/``io``/``net``
    properties are sugar for the conventional names.
    """

    __slots__ = ("span_id", "trace_id", "parent_span_id", "name",
                 "attrs", "start", "end", "children", "deltas",
                 "_sources", "_before")

    def __init__(self, span_id: int, name: str, start: float,
                 attrs: dict, sources: dict, trace_id: str = "",
                 parent_span_id: "int | None" = None):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.children: list[Span] = []
        self.deltas: dict[str, object] = {}
        self._sources = sources
        self._before = {key: _snap(src) for key, src in sources.items()}

    # -- convenience accessors ----------------------------------------

    @property
    def cost(self):
        """Index cost delta (a CostCounter), when one was bound."""
        return self.deltas.get("cost")

    @property
    def io(self):
        """DFS block-I/O delta (a BlockStats), when one was bound."""
        return self.deltas.get("io")

    @property
    def net(self):
        """Network delta (a NetworkStats), when one was bound."""
        return self.deltas.get("net")

    @property
    def duration(self) -> float:
        """Wall (or injected-clock) seconds this span covered."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def set(self, key: str, value) -> None:
        """Attach/overwrite one attribute after the span opened."""
        self.attrs[key] = value

    def context(self) -> TraceContext:
        """This span's propagatable identity (sent to workers)."""
        return TraceContext(self.trace_id, self.span_id)

    def _close(self, end: float) -> None:
        self.end = end
        for key, src in self._sources.items():
            self.deltas[key] = _delta(src, self._before[key])
        self._sources = {}
        self._before = {}

    # -- tree walking ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant (or self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def leaves(self) -> list["Span"]:
        """Descendant spans (or self) with no children."""
        return [s for s in self.walk() if not s.children]

    def to_dict(self, parent_id: int | None = None) -> dict:
        """This span alone as a JSON-ready dict (children by id)."""
        if parent_id is None:
            parent_id = self.parent_span_id
        out: dict = {"span_id": self.span_id,
                     "trace_id": self.trace_id,
                     "parent_id": parent_id,
                     "name": self.name, "start": self.start,
                     "end": self.end, "duration": self.duration}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        for key, delta in self.deltas.items():
            as_dict = getattr(delta, "as_dict", None)
            out[key] = as_dict() if as_dict is not None else vars(delta)
        return out

    def flatten(self, parent_id: int | None = None) -> list[dict]:
        """The whole subtree as JSON-ready dicts, one per span."""
        rows = [self.to_dict(parent_id)]
        for child in self.children:
            rows.extend(child.flatten(self.span_id))
        return rows

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return f"<Span {self.name!r} #{self.span_id} {state}>"


class _SpanHandle:
    """Context-manager sugar over Tracer.begin/end."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer.end(self._span)


class Tracer:
    """Builds span trees; finished roots accumulate until drained.

    ``begin``/``end`` are the generator-safe API (sessions hold spans
    open across yields); ``span(...)`` wraps them as a context manager
    for straight-line code.  ``end`` accepts out-of-order closes: the
    parent link is fixed at ``begin`` time, so ending an outer span
    while an inner one is still open never corrupts the tree.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (spans begun on a background
        thread become their own roots, never children of another
        thread's open query)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, *, cost=None, io=None, net=None,
              parent: "Span | None" = None, **attrs) -> Span:
        """Open a span as a child of the innermost open span.

        ``parent`` pins the span under an explicit open span instead
        (it is then not pushed on the stack): the distributed sampler
        uses this to attach per-worker ``worker_pull`` spans directly
        under its ``dist_fanout`` span.
        """
        sources = {}
        if cost is not None:
            sources["cost"] = cost
        if io is not None:
            sources["io"] = io
        if net is not None:
            sources["net"] = net
        stack = self._stack
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        if parent is not None:
            span = Span(span_id, name, self.clock(), attrs, sources,
                        trace_id=parent.trace_id,
                        parent_span_id=parent.span_id)
            parent.children.append(span)
            return span
        if stack:
            top = stack[-1]
            span = Span(span_id, name, self.clock(), attrs, sources,
                        trace_id=top.trace_id,
                        parent_span_id=top.span_id)
            top.children.append(span)
        else:
            span = Span(span_id, name, self.clock(), attrs, sources,
                        trace_id=_new_trace_id())
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close a span (idempotent; tolerates out-of-order ends)."""
        if span is None or span.closed:
            return
        span._close(self.clock())
        try:
            self._stack.remove(span)
        except ValueError:
            pass

    def span(self, name: str, *, cost=None, io=None, net=None,
             **attrs) -> _SpanHandle:
        """``with tracer.span("phase", cost=counter) as span: ...``"""
        return _SpanHandle(self, self.begin(name, cost=cost, io=io,
                                            net=net, **attrs))

    @property
    def last_root(self) -> Span | None:
        """The most recently opened root span, if any."""
        return self.roots[-1] if self.roots else None

    def drain(self) -> list[Span]:
        """Return and clear the accumulated root spans."""
        with self._lock:
            roots, self.roots = self.roots, []
        return roots

    def reset(self) -> None:
        """Drop all spans, open and finished (this thread's stack)."""
        with self._lock:
            self.roots = []
            self._next_id = 0
        self._local.stack = []


class _NullSpan(Span):
    """Shared inert span: every mutation is a no-op."""

    __slots__ = ()

    def __init__(self):
        super().__init__(-1, "null", 0.0, {}, {}, trace_id="null")

    def set(self, key: str, value) -> None:
        pass

    def _close(self, end: float) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class NullTracer(Tracer):
    """The default tracer: free to call, records nothing."""

    enabled = False

    def begin(self, name: str, *, cost=None, io=None, net=None,
              parent: "Span | None" = None, **attrs) -> Span:
        return _NULL_SPAN

    def end(self, span: Span) -> None:
        pass

    def span(self, name: str, *, cost=None, io=None, net=None,
             **attrs):
        return _NULL_HANDLE


NULL_TRACER = NullTracer()
