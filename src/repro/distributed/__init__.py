"""Distributed substrate: STORM on a (simulated) cluster.

The paper: "STORM builds on a cluster of commodity machines to achieve its
scalability ... distributed R-trees are used ... a distributed Hilbert
R-tree is used to work with the underlying distributed cluster."

``cluster``
    Simulated machines with a latency/bandwidth network cost model and
    per-worker I/O accounting.
``partitioner``
    Hilbert-range partitioning: contiguous curve ranges make shards both
    balanced and spatially coherent.
``dist_index``
    The distributed Hilbert R-tree: one shard (Hilbert R-tree + RS-tree
    sampler) per worker, with routed inserts/deletes and distributed
    counting.
``dist_sampler``
    Merges per-worker sample streams into one globally uniform
    without-replacement stream by remaining-count-proportional selection,
    batching worker fetches to amortise network round-trips.

Everything runs in one process; "distribution" is the cost model — the
simulated wall-clock of a query is ``network + max over workers`` (the
workers operate in parallel), which is what the scaling benchmark reports.
"""

from repro.distributed.cluster import (NetworkModel, NetworkStats,
                                       SimulatedCluster, Worker)
from repro.distributed.dataset import DistributedDataset
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler
from repro.distributed.partitioner import HilbertRangePartitioner

__all__ = [
    "DistributedDataset",
    "DistributedSTIndex",
    "DistributedSampler",
    "HilbertRangePartitioner",
    "NetworkModel",
    "NetworkStats",
    "SimulatedCluster",
    "Worker",
]
