"""Globally uniform sampling over the distributed index.

Each worker's RS-tree stream is uniform without replacement over its own
shard's in-range points.  Choosing the next *worker* with probability
proportional to its remaining in-range count and consuming the next item
of that worker's stream therefore yields a globally uniform
without-replacement stream (shards are disjoint — same argument as the
RS-tree's node merge).

Network efficiency comes from batching: the coordinator pre-fetches a
batch of samples per request, amortising one round trip over many
samples.  Batches are *adaptive*: each worker's batch starts at
``batch_size`` and doubles (up to ``max_batch_size``) every time the
consumer drains it and comes back for more, so long-running streams pay
ever fewer coordinator round trips while short interactive pulls never
over-fetch by more than the initial batch.  Statistics are unaffected —
batching only reorders *when* the worker computes its stream, not
*what* it returns.  Worker selection runs on a Fenwick tree over the
remaining per-shard counts: O(log #workers) per draw, exact at every
step.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.geometry import Rect
from repro.core.records import STRange
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.weighted import FenwickSampler
from repro.distributed.cluster import (MESSAGE_HEADER_BYTES,
                                       RECORD_WIRE_BYTES)
from repro.distributed.dist_index import DistributedSTIndex
from repro.errors import ClusterError
from repro.index.cost import CostCounter, CostModel, DEFAULT_COST_MODEL
from repro.index.rtree import Entry

__all__ = ["DistributedSampler"]


class DistributedSampler(SpatialSampler):
    """Coordinator-side merge of per-worker sample streams.

    Subclassing :class:`SpatialSampler` gives it the instrumented
    ``open_stream`` entry point, so distributed sessions are traced and
    metered exactly like local ones; each stream additionally opens a
    ``dist_fanout`` span carrying the network delta and the merged
    per-worker index cost delta.
    """

    name = "distributed-rs"

    def __init__(self, index: DistributedSTIndex, batch_size: int = 32,
                 max_batch_size: int = 1024):
        if batch_size < 1:
            raise ClusterError("batch_size must be >= 1")
        if max_batch_size < batch_size:
            raise ClusterError("max_batch_size must be >= batch_size")
        self.index = index
        self.batch_size = batch_size
        self.max_batch_size = max_batch_size
        self._last_query_seconds: float | None = None

    def range_count(self, query: "Rect | STRange",
                    cost: "CostCounter | None" = None) -> int:
        """``cost`` is accepted for session-protocol compatibility; the
        cluster does its own per-worker/network accounting."""
        return self.index.range_count(query)

    def sample_stream(self, query: "Rect | STRange",
                      rng: random.Random,
                      cost: "CostCounter | None" = None
                      ) -> Iterator[Entry]:
        """Uniform without-replacement samples of the global range."""
        rect = self.index.to_rect(query)
        cluster = self.index.cluster
        workers = self.index._intersecting_workers(rect)
        worker_costs = cluster.snapshot_costs()
        net_before = cluster.network.snapshot()
        span = self.obs.tracer.begin(
            "dist_fanout", workers=len(workers),
            cost=cluster.total_worker_cost, net=cluster.network)
        remaining: list[int] = []
        handles: list[int] = []
        buffers: list[list[Entry]] = []
        next_batch: list[int] = []
        for worker in workers:
            cluster.network.charge(
                messages=2, payload_bytes=2 * MESSAGE_HEADER_BYTES)
            remaining.append(worker.range_count(rect))
            handles.append(worker.open_stream(rect,
                                              rng.getrandbits(32)))
            buffers.append([])
            next_batch.append(self.batch_size)
        fen = FenwickSampler(remaining)
        try:
            while fen.total > 0:
                idx = fen.sample(rng)
                if not buffers[idx]:
                    want = min(next_batch[idx], remaining[idx])
                    batch = workers[idx].fetch_batch(handles[idx], want)
                    cluster.network.charge(
                        messages=2,
                        payload_bytes=(MESSAGE_HEADER_BYTES
                                       + len(batch)
                                       * RECORD_WIRE_BYTES))
                    if not batch:
                        # Defensive: count said more, stream disagrees.
                        fen.add(idx, -remaining[idx])
                        remaining[idx] = 0
                        continue
                    buffers[idx] = batch[::-1]  # pop() consumes in order
                    next_batch[idx] = min(2 * next_batch[idx],
                                          self.max_batch_size)
                entry = buffers[idx].pop()
                remaining[idx] -= 1
                fen.add(idx, -1)
                yield entry
        finally:
            for worker, handle in zip(workers, handles):
                worker.close_stream(handle)
            net_delta = cluster.network.delta_from(net_before)
            self._last_query_seconds = (
                net_delta.seconds(cluster.network_model)
                + cluster.max_worker_seconds(since=worker_costs))
            span.set("simulated_seconds", self._last_query_seconds)
            self.obs.tracer.end(span)
            registry = self.obs.registry
            if registry.enabled:
                registry.counter("storm.cluster.messages").inc(
                    net_delta.messages)
                registry.counter("storm.cluster.payload_bytes").inc(
                    net_delta.payload_bytes)

    def last_query_seconds(self,
                           model: CostModel = DEFAULT_COST_MODEL
                           ) -> float:
        """Simulated wall time of the last finished stream: network plus
        the slowest worker (workers run in parallel)."""
        if self._last_query_seconds is None:
            raise ClusterError("no query has completed yet")
        return self._last_query_seconds
