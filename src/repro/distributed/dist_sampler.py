"""Globally uniform sampling over the distributed index.

Each worker's RS-tree stream is uniform without replacement over its own
shard's in-range points.  Choosing the next *worker* with probability
proportional to its remaining in-range count and consuming the next item
of that worker's stream therefore yields a globally uniform
without-replacement stream (shards are disjoint — same argument as the
RS-tree's node merge).

Network efficiency comes from batching: the coordinator pre-fetches a
batch of samples per request, amortising one round trip over many
samples.  Batches are *adaptive*: each worker's batch starts at
``batch_size`` and doubles (up to ``max_batch_size``) every time the
consumer drains it and comes back for more, so long-running streams pay
ever fewer coordinator round trips while short interactive pulls never
over-fetch by more than the initial batch.  Statistics are unaffected —
batching only reorders *when* the worker computes its stream, not
*what* it returns.  Worker selection runs on a Fenwick tree over the
remaining per-shard counts: O(log #workers) per draw, exact at every
step.

**Fault tolerance** (see ``docs/fault_tolerance.md``).  Every worker
exchange can fail — a crashed worker, an injected error, a network
timeout.  The coordinator recovers in three escalating steps:

1. *retry with exponential backoff* (simulated seconds, not wall
   clock): transient faults usually clear within ``max_retries``;
2. *failover*: re-open the shard's stream — on the primary if it came
   back (its old stream handle died with it), else on a live replica
   holder (``replication=k`` on the index).  The fresh stream replays
   the whole shard, so the coordinator filters out entries it already
   emitted; a uniform permutation restricted to the not-yet-emitted
   subset is a uniform permutation of that subset, so the merged
   stream stays exactly uniform;
3. *graceful degradation*: with no copy reachable, the shard's
   remaining weight is removed from the Fenwick tree — the surviving
   stream is uniform over the *reachable* population — and
   :attr:`coverage` drops below 1.0 so estimators can report honestly.

Fault/failover/retry events flow to ``storm.cluster.fault.*`` counters
and onto the ``dist_fanout`` span; backoff pauses are added to the
query's simulated seconds.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.core.geometry import Rect
from repro.core.records import STRange
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.weighted import FenwickSampler
from repro.distributed.cluster import (MESSAGE_HEADER_BYTES,
                                       RECORD_WIRE_BYTES, Worker)
from repro.distributed.dist_index import DistributedSTIndex
from repro.errors import (ClusterError, NetworkTimeoutError,
                          StreamLostError, WorkerUnavailableError)
from repro.index.cost import CostCounter, CostModel, DEFAULT_COST_MODEL
from repro.index.rtree import Entry

__all__ = ["DistributedSampler"]

#: Exceptions worth retrying in place (the peer may come back).
_RETRYABLE = (WorkerUnavailableError, NetworkTimeoutError)


class _Source:
    """Coordinator-side state of one shard's stream."""

    __slots__ = ("owner", "serving", "handle", "remaining", "buffer",
                 "next_batch", "emitted", "draws", "batches", "bytes",
                 "retries", "failovers")

    def __init__(self, owner: Worker, remaining: int, batch_size: int):
        self.owner = owner
        self.serving: Worker | None = None
        self.handle: int | None = None
        self.remaining = remaining
        self.buffer: list[Entry] = []
        self.next_batch = batch_size
        #: item ids already yielded from this shard — a re-opened
        #: stream replays the shard, so these are filtered out.
        self.emitted: set[int] = set()
        # Per-shard pull accounting, surfaced as a ``worker_pull``
        # span under the stream's ``dist_fanout`` span at close.
        self.draws = 0
        self.batches = 0
        self.bytes = 0
        self.retries = 0
        self.failovers = 0


class DistributedSampler(SpatialSampler):
    """Coordinator-side merge of per-worker sample streams.

    Subclassing :class:`SpatialSampler` gives it the instrumented
    ``open_stream`` entry point, so distributed sessions are traced and
    metered exactly like local ones; each stream additionally opens a
    ``dist_fanout`` span carrying the network delta, the merged
    per-worker index cost delta and the fault/failover tallies.
    """

    name = "distributed-rs"

    def __init__(self, index: DistributedSTIndex, batch_size: int = 32,
                 max_batch_size: int = 1024, max_retries: int = 3,
                 backoff_seconds: float = 0.05,
                 backoff_factor: float = 2.0):
        if batch_size < 1:
            raise ClusterError("batch_size must be >= 1")
        if max_batch_size < batch_size:
            raise ClusterError("max_batch_size must be >= batch_size")
        if max_retries < 0:
            raise ClusterError("max_retries cannot be negative")
        if backoff_seconds < 0 or backoff_factor < 1.0:
            raise ClusterError(
                "backoff needs seconds >= 0 and factor >= 1")
        self.index = index
        self.batch_size = batch_size
        self.max_batch_size = max_batch_size
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_factor = backoff_factor
        self._last_query_seconds: float | None = None
        #: Reachable fraction of the last stream's known population
        #: (1.0 unless graceful degradation dropped a shard).
        self.coverage: float = 1.0
        # Per-stream fault tallies (exposed for EXPLAIN / tests).
        # Rebound to the live tally dict each stream, so it is current
        # even while the stream is still open.
        self.last_faults: dict[str, float] = {}

    def range_count(self, query: "Rect | STRange",
                    cost: "CostCounter | None" = None) -> int:
        """``cost`` is accepted for session-protocol compatibility; the
        cluster does its own per-worker/network accounting."""
        return self.index.range_count(query)

    # -- fault-handling helpers -------------------------------------------

    def _with_retry(self, fn: Callable, tallies: dict[str, int],
                    src: "_Source | None" = None) -> object:
        """Run one exchange, retrying transient faults with
        exponential backoff (accounted in simulated seconds).
        ``src`` additionally attributes retries to one shard."""
        registry = self.obs.registry
        delay = self.backoff_seconds
        attempt = 0
        while True:
            try:
                return fn()
            except _RETRYABLE:
                tallies["errors"] += 1
                if registry.enabled:
                    registry.counter("storm.cluster.fault.errors").inc()
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                tallies["retries"] += 1
                if src is not None:
                    src.retries += 1
                tallies["backoff_seconds"] += delay
                delay *= self.backoff_factor
                if registry.enabled:
                    registry.counter(
                        "storm.cluster.fault.retries").inc()

    def _acquire_stream(self, src: _Source, rect: Rect,
                        rng: random.Random,
                        tallies: dict[str, float],
                        trace=None) -> bool:
        """(Re-)open a shard's stream: primary first, then any live
        replica holder, each attempted with the retry/backoff policy
        (a transient fault should not cost a shard its stream).
        Returns False when no copy is reachable."""
        cluster = self.index.cluster
        if src.handle is not None and src.serving is not None:
            # Drop the dead stream's handle; a crashed worker already
            # lost it, but a live worker that merely erred must not
            # leak the old generator.
            src.serving.close_stream(src.handle)
            src.handle = None
        candidates: list[tuple[Worker, int | None]] = []
        if not src.owner.down:
            candidates.append((src.owner, None))
        for holder in self.index.replica_holders(src.owner.worker_id,
                                                 exclude=src.owner):
            candidates.append((holder, src.owner.worker_id))
        for serving, owner_id in candidates:
            def open_once():
                cluster.charge_network(
                    messages=2, payload_bytes=2 * MESSAGE_HEADER_BYTES,
                    node=serving.node)
                if owner_id is None:
                    return serving.open_stream(rect,
                                               rng.getrandbits(32),
                                               trace=trace)
                return serving.open_replica_stream(
                    owner_id, rect, rng.getrandbits(32), trace=trace)

            try:
                handle = self._with_retry(open_once, tallies, src)
            except _RETRYABLE:
                continue
            src.serving = serving
            src.handle = handle
            src.buffer = []
            return True
        return False

    def _fetch_fresh(self, src: _Source, want: int,
                     tallies: dict[str, int]) -> list[Entry]:
        """Fetch up to ``want`` not-yet-emitted entries from the
        shard's current stream (a re-opened stream replays the shard,
        so already-emitted entries are dropped here)."""
        cluster = self.index.cluster
        out: list[Entry] = []
        while len(out) < want:
            ask = want - len(out)

            def exchange():
                # Headers first (the timeout applies to the request);
                # the response payload is tallied after it arrives.
                cluster.charge_network(
                    messages=2, payload_bytes=MESSAGE_HEADER_BYTES,
                    node=src.serving.node)
                return src.serving.fetch_batch(src.handle, ask)

            batch = self._with_retry(exchange, tallies, src)
            cluster.network.charge(
                messages=0,
                payload_bytes=len(batch) * RECORD_WIRE_BYTES)
            src.batches += 1
            src.bytes += (MESSAGE_HEADER_BYTES
                          + len(batch) * RECORD_WIRE_BYTES)
            if not batch:
                break
            out.extend(e for e in batch
                       if e.item_id not in src.emitted)
            if len(batch) < ask:
                break  # the stream is exhausted
        return out

    # -- the merged stream -------------------------------------------------

    def sample_stream(self, query: "Rect | STRange",
                      rng: random.Random,
                      cost: "CostCounter | None" = None
                      ) -> Iterator[Entry]:
        """Uniform without-replacement samples of the global range
        (of the *reachable* range under faults — see ``coverage``)."""
        rect = self.index.to_rect(query)
        cluster = self.index.cluster
        workers = self.index._intersecting_workers(rect)
        worker_costs = cluster.snapshot_costs()
        net_before = cluster.network.snapshot()
        span = self.obs.tracer.begin(
            "dist_fanout", workers=len(workers),
            cost=cluster.total_worker_cost, net=cluster.network)
        registry = self.obs.registry
        # The propagated trace context: workers tag their per-pull
        # tallies with it (only a real tracer mints real trace ids).
        trace = span.context() if self.obs.tracer.enabled else None
        tallies: dict[str, float] = {
            "errors": 0, "retries": 0, "failovers": 0, "degraded": 0,
            "backoff_seconds": 0.0}
        self.last_faults = tallies  # live view; final after close
        self.coverage = 1.0
        known_total = 0
        lost = 0
        unknown_shards = 0
        counted_shards = 0
        sources: list[_Source] = []
        for worker in workers:
            try:
                count = self._with_retry(
                    lambda: self.index.count_on(worker, rect), tallies)
            except WorkerUnavailableError:
                # The shard died before we could even count it: its
                # in-range population is unknown.  It still must drag
                # coverage down, so it enters the denominator with an
                # estimated count below (the mean of the reachable
                # shards' counts — Hilbert sharding balances shard
                # sizes, see docs/fault_tolerance.md).
                unknown_shards += 1
                tallies["degraded"] += 1
                if registry.enabled:
                    registry.counter(
                        "storm.cluster.fault.degraded").inc()
                continue
            counted_shards += 1
            if count == 0:
                continue
            known_total += count
            src = _Source(worker, count, self.batch_size)
            if not self._acquire_stream(src, rect, rng, tallies,
                                        trace=trace):
                lost += count
                tallies["degraded"] += 1
                if registry.enabled:
                    registry.counter(
                        "storm.cluster.fault.degraded").inc()
                continue
            if src.serving is not src.owner:
                tallies["failovers"] += 1
                src.failovers += 1
                if registry.enabled:
                    registry.counter(
                        "storm.cluster.fault.failovers").inc()
            sources.append(src)
        fen = FenwickSampler([src.remaining for src in sources])
        if unknown_shards:
            if counted_shards and known_total:
                per_shard = known_total / counted_shards
                estimated = per_shard * unknown_shards
                known_total += estimated
                lost += estimated
            else:
                # Nothing reachable at all: coverage collapses.
                known_total, lost = 1, 1
        if known_total:
            self.coverage = (known_total - lost) / known_total
        try:
            while fen.total > 0:
                idx = fen.sample(rng)
                src = sources[idx]
                if not src.buffer:
                    want = min(src.next_batch, src.remaining)
                    try:
                        batch = self._fetch_fresh(src, want, tallies)
                    except (*_RETRYABLE, StreamLostError):
                        if self._acquire_stream(src, rect, rng,
                                                tallies, trace=trace):
                            tallies["failovers"] += 1
                            src.failovers += 1
                            if registry.enabled:
                                registry.counter(
                                    "storm.cluster.fault.failovers"
                                ).inc()
                        else:
                            # Graceful degradation: drop the shard's
                            # weight so the surviving merge stays
                            # uniform over the reachable population.
                            lost += src.remaining
                            fen.add(idx, -src.remaining)
                            src.remaining = 0
                            src.handle = None
                            tallies["degraded"] += 1
                            if registry.enabled:
                                registry.counter(
                                    "storm.cluster.fault.degraded"
                                ).inc()
                            self.coverage = ((known_total - lost)
                                             / known_total)
                        continue
                    if not batch:
                        # Defensive: count said more, stream disagrees.
                        fen.add(idx, -src.remaining)
                        src.remaining = 0
                        continue
                    src.buffer = batch[::-1]  # pop() consumes in order
                    src.next_batch = min(2 * src.next_batch,
                                         self.max_batch_size)
                entry = src.buffer.pop()
                src.emitted.add(entry.item_id)
                src.remaining -= 1
                src.draws += 1
                fen.add(idx, -1)
                yield entry
        finally:
            for src in sources:
                if src.handle is not None and src.serving is not None:
                    src.serving.close_stream(src.handle)
            net_delta = cluster.network.delta_from(net_before)
            self._last_query_seconds = (
                net_delta.seconds(cluster.network_model)
                + cluster.max_worker_seconds(since=worker_costs)
                + tallies["backoff_seconds"])
            span.set("simulated_seconds", self._last_query_seconds)
            if (tallies["errors"] or tallies["failovers"]
                    or tallies["degraded"]):
                span.set("fault_errors", tallies["errors"])
                span.set("retries", tallies["retries"])
                span.set("failovers", tallies["failovers"])
                span.set("degraded_workers", tallies["degraded"])
            span.set("coverage", self.coverage)
            if self.obs.tracer.enabled:
                # Stitch the per-shard pull accounting under the
                # fanout span: one worker_pull child per shard that
                # saw any traffic, all sharing the stream's trace id.
                for src in sources:
                    if not (src.batches or src.retries
                            or src.failovers):
                        continue
                    attrs = {"worker": src.owner.worker_id,
                             "draws": src.draws,
                             "batches": src.batches,
                             "bytes": src.bytes,
                             "retries": src.retries,
                             "failovers": src.failovers}
                    if src.serving is not None \
                            and src.serving is not src.owner:
                        attrs["served_by"] = src.serving.worker_id
                    pull = self.obs.tracer.begin(
                        "worker_pull", parent=span, **attrs)
                    self.obs.tracer.end(pull)
            self.obs.tracer.end(span)
            if registry.enabled:
                for src in sources:
                    if src.draws:
                        registry.counter(
                            "storm.cluster.worker.draws",
                            worker=src.owner.worker_id).inc(src.draws)
                registry.counter("storm.cluster.messages").inc(
                    net_delta.messages)
                registry.counter("storm.cluster.payload_bytes").inc(
                    net_delta.payload_bytes)
                registry.gauge("storm.cluster.coverage").set(
                    self.coverage)

    def last_query_seconds(self,
                           model: CostModel = DEFAULT_COST_MODEL
                           ) -> float:
        """Simulated wall time of the last finished stream: network plus
        the slowest worker (workers run in parallel) plus any retry
        backoff the coordinator sat through."""
        if self._last_query_seconds is None:
            raise ClusterError("no query has completed yet")
        return self._last_query_seconds
