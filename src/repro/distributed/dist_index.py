"""The distributed Hilbert R-tree: sharded index + routed updates."""

from __future__ import annotations

from typing import Iterable

from repro.core.geometry import Rect
from repro.core.records import Record, STRange
from repro.distributed.cluster import (MESSAGE_HEADER_BYTES,
                                       NetworkModel, SimulatedCluster,
                                       Worker)
from repro.distributed.partitioner import HilbertRangePartitioner
from repro.errors import (ClusterError, NetworkTimeoutError,
                          WorkerUnavailableError)
from repro.faults import FaultPlan

__all__ = ["DistributedSTIndex"]


class DistributedSTIndex:
    """One dataset sharded across a simulated cluster.

    Build: partition records by Hilbert range, bulk-load one Hilbert
    R-tree (+ RS sampler) per worker.  Queries fan out to workers whose
    shard MBR intersects; updates route by partition key.  All control
    messages charge the cluster's network stats.

    ``replication=k`` additionally loads a copy of every shard onto the
    next k - 1 workers around the ring (the partitioner's chained
    placement): counts and streams fail over to a replica holder when
    the primary is unreachable, and lookups follow.  ``faults`` attaches
    a :class:`~repro.faults.FaultPlan` to the whole cluster.
    """

    def __init__(self, records: Iterable[Record], n_workers: int = 4,
                 dims: int = 3, bounds: Rect | None = None,
                 network: NetworkModel | None = None, seed: int = 0,
                 replication: int = 1,
                 faults: FaultPlan | None = None, **worker_kwargs):
        materialised = list(records)
        if not materialised:
            raise ClusterError("cannot build an empty distributed index")
        self.dims = dims
        if bounds is None:
            keys = [r.key(dims) for r in materialised]
            base = Rect.bounding(keys)
            pad_lo = [l - max((h - l) * 0.25, 1e-9)
                      for l, h in zip(base.lo, base.hi)]
            pad_hi = [h + max((h - l) * 0.25, 1e-9)
                      for l, h in zip(base.lo, base.hi)]
            bounds = Rect(pad_lo, pad_hi)
        self.bounds = bounds
        self.replication = replication
        self.partitioner = HilbertRangePartitioner(
            bounds, n_workers, dims=dims, replication=replication)
        self.cluster = SimulatedCluster(n_workers, bounds, dims=dims,
                                        network=network, seed=seed,
                                        faults=faults, **worker_kwargs)
        shards = self.partitioner.split(materialised)
        for worker, shard in zip(self.cluster.workers, shards):
            worker.load(shard)
        for shard_id, shard in enumerate(shards):
            for holder in self.partitioner.placement(shard_id)[1:]:
                self.cluster.workers[holder].host_replica(shard_id,
                                                          shard)

    # -- helpers ---------------------------------------------------------

    def to_rect(self, query: "Rect | STRange") -> Rect:
        """Convert an STRange/Rect query to the index's box type."""
        if isinstance(query, STRange):
            return query.to_rect(self.dims)
        return query

    def _intersecting_workers(self, query: Rect):
        out = []
        for worker in self.cluster.workers:
            root = worker.tree.root
            if root is not None and query.intersects(root.mbr):
                out.append(worker)
        return out

    def replica_holders(self, owner_id: int,
                        exclude: "Worker | None" = None
                        ) -> list[Worker]:
        """Live workers hosting a copy of a shard (failover targets)."""
        out = []
        for holder_id in self.partitioner.placement(owner_id)[1:]:
            holder = self.cluster.workers[holder_id]
            if holder is exclude or holder.down:
                continue
            if holder.has_replica(owner_id):
                out.append(holder)
        return out

    # -- queries -----------------------------------------------------------

    def count_on(self, worker: Worker, rect: Rect) -> int:
        """One worker's in-range count, failing over to a replica
        holder when the primary is unreachable.

        Raises :class:`~repro.errors.WorkerUnavailableError` when the
        shard is unreachable everywhere (degraded-coverage territory —
        the caller decides how honest to be about it).
        """
        try:
            self.cluster.charge_network(
                messages=2, payload_bytes=2 * MESSAGE_HEADER_BYTES,
                node=worker.node)
            return worker.range_count(rect)
        except (WorkerUnavailableError, NetworkTimeoutError):
            pass
        for holder in self.replica_holders(worker.worker_id,
                                           exclude=worker):
            try:
                self.cluster.charge_network(
                    messages=2, payload_bytes=2 * MESSAGE_HEADER_BYTES,
                    node=holder.node)
                return holder.replica_range_count(worker.worker_id,
                                                  rect)
            except (WorkerUnavailableError, NetworkTimeoutError):
                continue
        raise WorkerUnavailableError(
            f"shard {worker.worker_id} unreachable: primary and "
            f"{self.replication - 1} replica(s) all failed")

    def range_count(self, query: "Rect | STRange") -> int:
        """Exact distributed count (one round trip per touched worker,
        replica failover per shard; unreachable shards are *skipped*,
        so a degraded count honestly reflects only reachable data)."""
        rect = self.to_rect(query)
        total = 0
        for worker in self._intersecting_workers(rect):
            try:
                total += self.count_on(worker, rect)
            except WorkerUnavailableError:
                continue
        return total

    def lookup(self, record_id: int) -> Record:
        """Fetch a record from whichever worker owns it, falling back
        to a replica holder when the owner is down."""
        for worker in self.cluster.workers:
            record = worker.records.get(record_id)
            if record is None:
                continue
            if not worker.down:
                self.cluster.network.charge(
                    messages=2,
                    payload_bytes=MESSAGE_HEADER_BYTES + 120)
                return record
            for holder in self.replica_holders(worker.worker_id,
                                               exclude=worker):
                replica = holder.replica_record(worker.worker_id,
                                                record_id)
                if replica is not None:
                    self.cluster.network.charge(
                        messages=2,
                        payload_bytes=MESSAGE_HEADER_BYTES + 120)
                    return replica
            raise WorkerUnavailableError(
                f"record {record_id} is on downed worker "
                f"{worker.worker_id} and no live replica holds it")
        raise ClusterError(f"record {record_id} not in the cluster")

    def __len__(self) -> int:
        return self.cluster.total_records()

    # -- updates -------------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Route one record to its Hilbert-range shard (and any replica
        holders, so failover never serves a stale shard)."""
        shard = self.partitioner.shard_of(record)
        self.cluster.network.charge(
            messages=2, payload_bytes=MESSAGE_HEADER_BYTES + 120)
        self.cluster.workers[shard].insert(record)
        for holder_id in self.partitioner.placement(shard)[1:]:
            holder = self.cluster.workers[holder_id]
            self.cluster.network.charge(
                messages=2, payload_bytes=MESSAGE_HEADER_BYTES + 120)
            holder.replica_insert(shard, record)

    def delete(self, record_id: int) -> bool:
        """Delete by id (broadcast; routing needs the key we don't have)."""
        found = False
        for worker in self.cluster.workers:
            self.cluster.network.charge(
                messages=2, payload_bytes=2 * MESSAGE_HEADER_BYTES)
            if worker.delete(record_id):
                found = True
                for holder_id in self.partitioner.placement(
                        worker.worker_id)[1:]:
                    holder = self.cluster.workers[holder_id]
                    self.cluster.network.charge(
                        messages=2,
                        payload_bytes=2 * MESSAGE_HEADER_BYTES)
                    holder.replica_delete(worker.worker_id, record_id)
                break
        return found
