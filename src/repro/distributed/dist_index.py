"""The distributed Hilbert R-tree: sharded index + routed updates."""

from __future__ import annotations

from typing import Iterable

from repro.core.geometry import Rect
from repro.core.records import Record, STRange
from repro.distributed.cluster import (MESSAGE_HEADER_BYTES,
                                       NetworkModel, SimulatedCluster)
from repro.distributed.partitioner import HilbertRangePartitioner
from repro.errors import ClusterError

__all__ = ["DistributedSTIndex"]


class DistributedSTIndex:
    """One dataset sharded across a simulated cluster.

    Build: partition records by Hilbert range, bulk-load one Hilbert
    R-tree (+ RS sampler) per worker.  Queries fan out to workers whose
    shard MBR intersects; updates route by partition key.  All control
    messages charge the cluster's network stats.
    """

    def __init__(self, records: Iterable[Record], n_workers: int = 4,
                 dims: int = 3, bounds: Rect | None = None,
                 network: NetworkModel | None = None, seed: int = 0,
                 **worker_kwargs):
        materialised = list(records)
        if not materialised:
            raise ClusterError("cannot build an empty distributed index")
        self.dims = dims
        if bounds is None:
            keys = [r.key(dims) for r in materialised]
            base = Rect.bounding(keys)
            pad_lo = [l - max((h - l) * 0.25, 1e-9)
                      for l, h in zip(base.lo, base.hi)]
            pad_hi = [h + max((h - l) * 0.25, 1e-9)
                      for l, h in zip(base.lo, base.hi)]
            bounds = Rect(pad_lo, pad_hi)
        self.bounds = bounds
        self.partitioner = HilbertRangePartitioner(bounds, n_workers,
                                                   dims=dims)
        self.cluster = SimulatedCluster(n_workers, bounds, dims=dims,
                                        network=network, seed=seed,
                                        **worker_kwargs)
        shards = self.partitioner.split(materialised)
        for worker, shard in zip(self.cluster.workers, shards):
            worker.load(shard)

    # -- helpers ---------------------------------------------------------

    def to_rect(self, query: "Rect | STRange") -> Rect:
        """Convert an STRange/Rect query to the index's box type."""
        if isinstance(query, STRange):
            return query.to_rect(self.dims)
        return query

    def _intersecting_workers(self, query: Rect):
        out = []
        for worker in self.cluster.workers:
            root = worker.tree.root
            if root is not None and query.intersects(root.mbr):
                out.append(worker)
        return out

    # -- queries -----------------------------------------------------------

    def range_count(self, query: "Rect | STRange") -> int:
        """Exact distributed count (one round trip to touched workers)."""
        rect = self.to_rect(query)
        total = 0
        for worker in self._intersecting_workers(rect):
            self.cluster.network.charge(
                messages=2, payload_bytes=2 * MESSAGE_HEADER_BYTES)
            total += worker.range_count(rect)
        return total

    def lookup(self, record_id: int) -> Record:
        """Fetch a record from whichever worker owns it."""
        for worker in self.cluster.workers:
            record = worker.records.get(record_id)
            if record is not None:
                self.cluster.network.charge(
                    messages=2,
                    payload_bytes=MESSAGE_HEADER_BYTES + 120)
                return record
        raise ClusterError(f"record {record_id} not in the cluster")

    def __len__(self) -> int:
        return self.cluster.total_records()

    # -- updates -------------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Route one record to its Hilbert-range shard."""
        shard = self.partitioner.shard_of(record)
        self.cluster.network.charge(
            messages=2, payload_bytes=MESSAGE_HEADER_BYTES + 120)
        self.cluster.workers[shard].insert(record)

    def delete(self, record_id: int) -> bool:
        """Delete by id (broadcast; routing needs the key we don't have)."""
        for worker in self.cluster.workers:
            self.cluster.network.charge(
                messages=2, payload_bytes=2 * MESSAGE_HEADER_BYTES)
            if worker.delete(record_id):
                return True
        return False
