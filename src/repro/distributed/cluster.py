"""Simulated cluster: workers, shards and the network cost model."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.geometry import Rect
from repro.core.records import Record
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.errors import ClusterError
from repro.index.cost import CostCounter, CostModel, DEFAULT_COST_MODEL
from repro.index.hilbert_rtree import HilbertRTree
from repro.obs import NULL_OBS, Observability

__all__ = ["NetworkModel", "NetworkStats", "Worker", "SimulatedCluster"]

# Rough per-record wire size (a JSON document with a few attributes).
RECORD_WIRE_BYTES = 120
MESSAGE_HEADER_BYTES = 64


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Latency/bandwidth constants for simulated message exchange."""

    latency_seconds: float = 200e-6          # same-rack RTT
    bandwidth_bytes_per_second: float = 1e9  # 8 Gb/s effective

    def seconds(self, messages: int, payload_bytes: int) -> float:
        """Simulated seconds for a message count and payload size."""
        return (messages * self.latency_seconds
                + payload_bytes / self.bandwidth_bytes_per_second)


@dataclass(slots=True)
class NetworkStats:
    """Tally of simulated network traffic."""

    messages: int = 0
    payload_bytes: int = 0

    def charge(self, messages: int = 1, payload_bytes: int = 0) -> None:
        """Tally messages and payload bytes."""
        self.messages += messages
        self.payload_bytes += payload_bytes

    def seconds(self, model: NetworkModel) -> float:
        """Simulated network seconds under a model."""
        return model.seconds(self.messages, self.payload_bytes)

    def snapshot(self) -> "NetworkStats":
        """Independent copy of the tallies."""
        return NetworkStats(self.messages, self.payload_bytes)

    def delta_from(self, earlier: "NetworkStats") -> "NetworkStats":
        """Tallies accumulated since an earlier snapshot."""
        return NetworkStats(self.messages - earlier.messages,
                            self.payload_bytes - earlier.payload_bytes)

    def merge(self, other: "NetworkStats") -> None:
        """Fold another tally into this one."""
        self.messages += other.messages
        self.payload_bytes += other.payload_bytes

    def as_dict(self) -> dict[str, int]:
        """The tallies as a plain dict (for exporters)."""
        return {"messages": self.messages,
                "payload_bytes": self.payload_bytes}


class Worker:
    """One machine: a shard of records with its own index + sampler.

    ``sampler_kind`` picks the shard-local sampling index: ``"rs"``
    (the default single Hilbert R-tree with buffers) or ``"ls"`` (a
    per-shard level-sampling forest — the paper's "distributed R-trees
    are used when applying the [LS-tree] idea in a distributed cluster
    setting").
    """

    def __init__(self, worker_id: int, bounds: Rect, dims: int = 3,
                 leaf_capacity: int = 64, branch_capacity: int = 16,
                 rs_buffer_size: int = 64, seed: int = 0,
                 sampler_kind: str = "rs"):
        if sampler_kind not in ("rs", "ls"):
            raise ClusterError(
                f"sampler_kind must be rs|ls, not {sampler_kind!r}")
        self.worker_id = worker_id
        self.dims = dims
        self.sampler_kind = sampler_kind
        self.records: dict[int, Record] = {}
        self.tree = HilbertRTree(dims, bounds,
                                 leaf_capacity=leaf_capacity,
                                 branch_capacity=branch_capacity)
        self.cost = CostCounter()
        self.forest = None
        if sampler_kind == "ls":
            from repro.core.sampling.ls_tree import LSTree, LSTreeSampler
            self.forest = LSTree(dims,
                                 rng=random.Random(seed ^ 0x5F5F),
                                 leaf_capacity=leaf_capacity,
                                 branch_capacity=branch_capacity)
            self.forest.cost = self.cost
            for t in self.forest.trees:
                t.cost = self.cost
            self.sampler = LSTreeSampler(self.forest)
        else:
            self.sampler = RSTreeSampler(self.tree,
                                         buffer_size=rs_buffer_size,
                                         rng=random.Random(seed))
        self._streams: dict[int, object] = {}
        self._next_stream = 0

    def load(self, records: Iterable[Record]) -> None:
        """Bulk-load this worker's shard."""
        materialised = list(records)
        for r in materialised:
            self.records[r.record_id] = r
        self.tree.bulk_load(
            (r.record_id, r.key(self.dims)) for r in materialised)
        if self.forest is not None:
            self.forest.bulk_load(
                (r.record_id, r.key(self.dims)) for r in materialised)
            self.forest.cost = self.cost
            for t in self.forest.trees:
                t.cost = self.cost
        else:
            self.sampler.prepare()

    def insert(self, record: Record) -> None:
        """Insert one record into this worker's shard and indexes."""
        if record.record_id in self.records:
            raise ClusterError(
                f"worker {self.worker_id}: duplicate record id "
                f"{record.record_id}")
        self.records[record.record_id] = record
        self.tree.insert(record.record_id, record.key(self.dims))
        if self.forest is not None:
            self.forest.insert(record.record_id, record.key(self.dims))

    def delete(self, record_id: int) -> bool:
        """Delete by id from this shard; returns whether it existed."""
        record = self.records.pop(record_id, None)
        if record is None:
            return False
        if self.forest is not None:
            self.forest.delete(record_id, record.key(self.dims))
        return self.tree.delete(record_id, record.key(self.dims))

    def range_count(self, query: Rect) -> int:
        return self.tree.range_count(query, self.cost)

    def open_stream(self, query: Rect, seed: int) -> int:
        """Start a per-query sample stream; returns a stream handle."""
        handle = self._next_stream
        self._next_stream += 1
        self._streams[handle] = self.sampler.sample_stream(
            query, random.Random(seed), cost=self.cost)
        return handle

    def fetch_batch(self, handle: int, n: int) -> list:
        """Next n samples of an open stream (fewer at exhaustion)."""
        stream = self._streams.get(handle)
        if stream is None:
            raise ClusterError(f"no stream {handle} on worker "
                               f"{self.worker_id}")
        out = []
        for entry in stream:  # type: ignore[union-attr]
            out.append(entry)
            if len(out) >= n:
                break
        return out

    def close_stream(self, handle: int) -> None:
        """Release a per-query stream handle."""
        self._streams.pop(handle, None)

    def lookup(self, record_id: int) -> Record:
        """Fetch a record owned by this worker."""
        record = self.records.get(record_id)
        if record is None:
            raise ClusterError(
                f"record {record_id} not on worker {self.worker_id}")
        return record

    def __len__(self) -> int:
        return len(self.records)


class SimulatedCluster:
    """A set of workers plus shared network accounting."""

    def __init__(self, n_workers: int, bounds: Rect, dims: int = 3,
                 network: NetworkModel | None = None, seed: int = 0,
                 obs: "Observability | None" = None, **worker_kwargs):
        if n_workers < 1:
            raise ClusterError("need at least one worker")
        self.network_model = network if network is not None \
            else NetworkModel()
        self.network = NetworkStats()
        self.obs = obs if obs is not None else NULL_OBS
        rng = random.Random(seed)
        self.workers = [Worker(i, bounds, dims=dims,
                               seed=rng.getrandbits(32), **worker_kwargs)
                        for i in range(n_workers)]
        self.obs.registry.gauge("storm.cluster.workers").set(n_workers)

    @property
    def n_workers(self) -> int:
        """Number of workers in the cluster."""
        return len(self.workers)

    def total_records(self) -> int:
        """Records across all shards."""
        return sum(len(w) for w in self.workers)

    def reset_costs(self) -> None:
        """Zero the network and per-worker cost tallies."""
        self.network = NetworkStats()
        for w in self.workers:
            w.cost.reset()

    def max_worker_seconds(self,
                           model: CostModel = DEFAULT_COST_MODEL,
                           since: list[CostCounter] | None = None
                           ) -> float:
        """Parallel-execution time: the slowest worker's simulated I/O."""
        seconds = []
        for i, w in enumerate(self.workers):
            cost = w.cost if since is None \
                else w.cost.delta_from(since[i])
            seconds.append(model.simulated_seconds(cost))
        return max(seconds)

    def snapshot_costs(self) -> list[CostCounter]:
        """Per-worker cost snapshots (for delta timing)."""
        return [w.cost.snapshot() for w in self.workers]

    def total_worker_cost(self) -> CostCounter:
        """All workers' index costs merged into one fresh counter
        (callers should use this instead of hand-summing
        ``worker.cost`` fields)."""
        total = CostCounter()
        for w in self.workers:
            total.merge(w.cost)
        return total
