"""Simulated cluster: workers, shards, faults and the network model.

Workers are *crashable*: a manual :meth:`SimulatedCluster.crash_worker`
or a :class:`~repro.faults.FaultPlan` crash window makes every gated
operation (``open_stream``, ``fetch_batch``, ``range_count``) raise
:class:`~repro.errors.WorkerUnavailableError`, and — like a real
process death — wipes the worker's in-memory stream handles, so a
later fetch on a recovered worker raises
:class:`~repro.errors.StreamLostError` instead of silently resuming.
Workers can also *host replicas* of other workers' shards
(``host_replica``), which is what the distributed sampler fails over
to; replica reads charge the hosting worker's cost counter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.geometry import Rect
from repro.core.records import Record
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.errors import (ClusterError, NetworkTimeoutError,
                          StreamLostError, WorkerUnavailableError)
from repro.faults import FaultPlan
from repro.index.cost import CostCounter, CostModel, DEFAULT_COST_MODEL
from repro.index.hilbert_rtree import HilbertRTree
from repro.obs import NULL_OBS, Observability, TraceContext

__all__ = ["NetworkModel", "NetworkStats", "Worker", "SimulatedCluster"]

# Rough per-record wire size (a JSON document with a few attributes).
RECORD_WIRE_BYTES = 120
MESSAGE_HEADER_BYTES = 64

#: Per-worker trace-tally retention: old traces are evicted FIFO so a
#: long-lived worker never accumulates unbounded per-trace state.
TRACE_TALLY_RETENTION = 64


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Latency/bandwidth constants for simulated message exchange.

    ``timeout_seconds`` (None = never) bounds one exchange: when a
    charge — scaled by a slow node's latency multiplier — exceeds it,
    :meth:`check` raises :class:`~repro.errors.NetworkTimeoutError`,
    which callers treat exactly like an unavailable peer (retryable).
    """

    latency_seconds: float = 200e-6          # same-rack RTT
    bandwidth_bytes_per_second: float = 1e9  # 8 Gb/s effective
    timeout_seconds: float | None = None

    def seconds(self, messages: int, payload_bytes: int) -> float:
        """Simulated seconds for a message count and payload size."""
        return (messages * self.latency_seconds
                + payload_bytes / self.bandwidth_bytes_per_second)

    def check(self, messages: int, payload_bytes: int,
              multiplier: float = 1.0) -> float:
        """Seconds for one exchange, enforcing the timeout."""
        seconds = self.seconds(messages, payload_bytes) * multiplier
        if self.timeout_seconds is not None \
                and seconds > self.timeout_seconds:
            raise NetworkTimeoutError(
                f"exchange took {seconds:.6f}s simulated "
                f"(timeout {self.timeout_seconds:.6f}s)")
        return seconds


@dataclass(slots=True)
class NetworkStats:
    """Tally of simulated network traffic."""

    messages: int = 0
    payload_bytes: int = 0

    def charge(self, messages: int = 1, payload_bytes: int = 0) -> None:
        """Tally messages and payload bytes."""
        self.messages += messages
        self.payload_bytes += payload_bytes

    def seconds(self, model: NetworkModel) -> float:
        """Simulated network seconds under a model."""
        return model.seconds(self.messages, self.payload_bytes)

    def snapshot(self) -> "NetworkStats":
        """Independent copy of the tallies."""
        return NetworkStats(self.messages, self.payload_bytes)

    def delta_from(self, earlier: "NetworkStats") -> "NetworkStats":
        """Tallies accumulated since an earlier snapshot."""
        return NetworkStats(self.messages - earlier.messages,
                            self.payload_bytes - earlier.payload_bytes)

    def merge(self, other: "NetworkStats") -> None:
        """Fold another tally into this one."""
        self.messages += other.messages
        self.payload_bytes += other.payload_bytes

    def as_dict(self) -> dict[str, int]:
        """The tallies as a plain dict (for exporters)."""
        return {"messages": self.messages,
                "payload_bytes": self.payload_bytes}


class Worker:
    """One machine: a shard of records with its own index + sampler.

    ``sampler_kind`` picks the shard-local sampling index: ``"rs"``
    (the default single Hilbert R-tree with buffers) or ``"ls"`` (a
    per-shard level-sampling forest — the paper's "distributed R-trees
    are used when applying the [LS-tree] idea in a distributed cluster
    setting").
    """

    def __init__(self, worker_id: int, bounds: Rect, dims: int = 3,
                 leaf_capacity: int = 64, branch_capacity: int = 16,
                 rs_buffer_size: int = 64, seed: int = 0,
                 sampler_kind: str = "rs"):
        if sampler_kind not in ("rs", "ls"):
            raise ClusterError(
                f"sampler_kind must be rs|ls, not {sampler_kind!r}")
        self.worker_id = worker_id
        self.bounds = bounds
        self.dims = dims
        self.sampler_kind = sampler_kind
        # Fault state: cluster-level wiring sets node/faults; a manual
        # crash() or a plan crash window makes gated ops raise.
        self.alive = True
        self.node = f"worker:{worker_id}"
        self.faults: FaultPlan | None = None
        # Construction knobs, kept so replica shards build identically.
        self._config = dict(leaf_capacity=leaf_capacity,
                            branch_capacity=branch_capacity,
                            rs_buffer_size=rs_buffer_size, seed=seed,
                            sampler_kind=sampler_kind)
        self.records: dict[int, Record] = {}
        self.tree = HilbertRTree(dims, bounds,
                                 leaf_capacity=leaf_capacity,
                                 branch_capacity=branch_capacity)
        self.cost = CostCounter()
        # owner worker id -> nested Worker holding a copy of that shard
        # (its cost counter is rebound to ours: replica reads run here).
        self._replica_shards: dict[int, Worker] = {}
        self.forest = None
        if sampler_kind == "ls":
            from repro.core.sampling.ls_tree import LSTree, LSTreeSampler
            self.forest = LSTree(dims,
                                 rng=random.Random(seed ^ 0x5F5F),
                                 leaf_capacity=leaf_capacity,
                                 branch_capacity=branch_capacity)
            self.forest.cost = self.cost
            for t in self.forest.trees:
                t.cost = self.cost
            self.sampler = LSTreeSampler(self.forest)
        else:
            self.sampler = RSTreeSampler(self.tree,
                                         buffer_size=rs_buffer_size,
                                         rng=random.Random(seed))
        self._streams: dict[int, object] = {}
        self._next_stream = 0
        # Distributed trace propagation: the coordinator sends a
        # TraceContext with open_stream; every fetch on that handle is
        # tallied under the originating trace id, so one query's work
        # can be read back per worker (EXPLAIN's workers section).
        #: trace id -> {"draws", "batches", "bytes"} (FIFO-bounded).
        self.trace_tallies: dict[str, dict[str, int]] = {}
        self._stream_traces: dict[int, str] = {}

    def load(self, records: Iterable[Record]) -> None:
        """Bulk-load this worker's shard."""
        materialised = list(records)
        for r in materialised:
            self.records[r.record_id] = r
        self.tree.bulk_load(
            (r.record_id, r.key(self.dims)) for r in materialised)
        if self.forest is not None:
            self.forest.bulk_load(
                (r.record_id, r.key(self.dims)) for r in materialised)
            self.forest.cost = self.cost
            for t in self.forest.trees:
                t.cost = self.cost
        else:
            self.sampler.prepare()

    def insert(self, record: Record) -> None:
        """Insert one record into this worker's shard and indexes."""
        if record.record_id in self.records:
            raise ClusterError(
                f"worker {self.worker_id}: duplicate record id "
                f"{record.record_id}")
        self.records[record.record_id] = record
        self.tree.insert(record.record_id, record.key(self.dims))
        if self.forest is not None:
            self.forest.insert(record.record_id, record.key(self.dims))

    def delete(self, record_id: int) -> bool:
        """Delete by id from this shard; returns whether it existed."""
        record = self.records.pop(record_id, None)
        if record is None:
            return False
        if self.forest is not None:
            self.forest.delete(record_id, record.key(self.dims))
        return self.tree.delete(record_id, record.key(self.dims))

    # -- fault state -------------------------------------------------------

    def crash(self) -> None:
        """Kill this worker: gated ops fail and in-memory state (open
        stream handles) is lost, exactly like a process death."""
        self.alive = False
        self._drop_streams()

    def recover(self) -> None:
        """Bring the worker back up (its streams stay lost)."""
        self.alive = True

    @property
    def down(self) -> bool:
        """Whether a gated op would fail right now (crash only, not
        transient injected errors); never advances the fault clock."""
        if not self.alive:
            return True
        return self.faults is not None and self.faults.is_down(self.node)

    def _drop_streams(self) -> None:
        for stream in self._streams.values():
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        self._streams.clear()
        # Trace *tallies* survive a crash (the work already happened);
        # only the handle->trace routing dies with the handles.
        self._stream_traces.clear()

    def _gate(self, op: str) -> None:
        """Raise WorkerUnavailableError when this op must fail.

        A plan crash window counts as a process death: stream handles
        are dropped the moment the outage is observed.  Injected
        per-op errors are transient — state survives, only this call
        fails.
        """
        plan = self.faults
        if plan is not None:
            plan.tick()
            if not self.alive or plan.is_down(self.node):
                self._drop_streams()
                raise WorkerUnavailableError(
                    f"worker {self.worker_id} is down "
                    f"(tick {plan.now})")
            if plan.should_fail(op):
                raise WorkerUnavailableError(
                    f"worker {self.worker_id}: injected {op} fault "
                    f"(tick {plan.now})")
        elif not self.alive:
            raise WorkerUnavailableError(
                f"worker {self.worker_id} is down")

    # -- replica hosting ---------------------------------------------------

    def host_replica(self, owner_id: int,
                     records: Iterable[Record]) -> None:
        """Load a copy of another worker's shard for failover serving.

        The copy gets its own index + sampler (built with this
        worker's construction knobs) but charges *this* worker's cost
        counter — replica reads run on the hosting machine.
        """
        if owner_id == self.worker_id:
            raise ClusterError(
                f"worker {self.worker_id} cannot replicate itself")
        replica = Worker(self.worker_id, self.bounds, dims=self.dims,
                         **self._config)
        replica.cost = self.cost
        replica.load(records)
        self._replica_shards[owner_id] = replica

    def has_replica(self, owner_id: int) -> bool:
        """Whether this worker holds a copy of the given shard."""
        return owner_id in self._replica_shards

    def replica_range_count(self, owner_id: int, query: Rect) -> int:
        """Range count served from a hosted replica shard."""
        self._gate("worker.range_count")
        return self._replica(owner_id).tree.range_count(query,
                                                        self.cost)

    def replica_insert(self, owner_id: int, record: Record) -> None:
        """Apply a routed insert to a hosted replica shard."""
        self._replica(owner_id).insert(record)

    def replica_delete(self, owner_id: int, record_id: int) -> bool:
        """Apply a routed delete to a hosted replica shard."""
        return self._replica(owner_id).delete(record_id)

    def replica_record(self, owner_id: int,
                       record_id: int) -> Record | None:
        """A record from a hosted replica shard (None when absent)."""
        replica = self._replica_shards.get(owner_id)
        if replica is None:
            return None
        return replica.records.get(record_id)

    def _replica(self, owner_id: int) -> "Worker":
        replica = self._replica_shards.get(owner_id)
        if replica is None:
            raise ClusterError(
                f"worker {self.worker_id} holds no replica of shard "
                f"{owner_id}")
        return replica

    # -- gated query surface ----------------------------------------------

    def range_count(self, query: Rect) -> int:
        self._gate("worker.range_count")
        return self.tree.range_count(query, self.cost)

    def open_stream(self, query: Rect, seed: int,
                    trace: "TraceContext | None" = None) -> int:
        """Start a per-query sample stream; returns a stream handle.

        ``trace`` is the coordinator's propagated trace context: every
        batch fetched on the returned handle is tallied under that
        trace id (see :meth:`trace_tally`).
        """
        self._gate("worker.open_stream")
        return self._register_stream(self.sampler.sample_stream(
            query, random.Random(seed), cost=self.cost), trace)

    def open_replica_stream(self, owner_id: int, query: Rect,
                            seed: int,
                            trace: "TraceContext | None" = None) -> int:
        """Start a stream over a hosted replica shard (failover path).

        The handle lives in this worker's stream table, so a crash
        here loses it like any other stream.
        """
        self._gate("worker.open_stream")
        replica = self._replica(owner_id)
        return self._register_stream(replica.sampler.sample_stream(
            query, random.Random(seed), cost=self.cost), trace)

    def _register_stream(self, stream,
                         trace: "TraceContext | None" = None) -> int:
        handle = self._next_stream
        self._next_stream += 1
        self._streams[handle] = stream
        if trace is not None:
            self._stream_traces[handle] = trace.trace_id
            if trace.trace_id not in self.trace_tallies:
                while len(self.trace_tallies) >= TRACE_TALLY_RETENTION:
                    oldest = next(iter(self.trace_tallies))
                    del self.trace_tallies[oldest]
                self.trace_tallies[trace.trace_id] = {
                    "draws": 0, "batches": 0, "bytes": 0}
        return handle

    def fetch_batch(self, handle: int, n: int) -> list:
        """Next n samples of an open stream (fewer at exhaustion)."""
        self._gate("worker.fetch_batch")
        stream = self._streams.get(handle)
        if stream is None:
            raise StreamLostError(f"no stream {handle} on worker "
                                  f"{self.worker_id}")
        out = []
        for entry in stream:  # type: ignore[union-attr]
            out.append(entry)
            if len(out) >= n:
                break
        trace_id = self._stream_traces.get(handle)
        if trace_id is not None:
            tally = self.trace_tallies.get(trace_id)
            if tally is not None:
                tally["draws"] += len(out)
                tally["batches"] += 1
                tally["bytes"] += (MESSAGE_HEADER_BYTES
                                   + len(out) * RECORD_WIRE_BYTES)
        return out

    def close_stream(self, handle: int) -> None:
        """Release a per-query stream handle (safe on a dead worker —
        a crash already dropped its handles)."""
        self._stream_traces.pop(handle, None)
        stream = self._streams.pop(handle, None)
        if stream is not None:
            close = getattr(stream, "close", None)
            if close is not None:
                close()

    def trace_tally(self, trace_id: str) -> dict[str, int]:
        """This worker's pull tallies for one trace (zeros if none)."""
        tally = self.trace_tallies.get(trace_id)
        if tally is None:
            return {"draws": 0, "batches": 0, "bytes": 0}
        return dict(tally)

    def open_stream_count(self) -> int:
        """Live stream handles (tests audit this for leaks)."""
        return len(self._streams)

    def lookup(self, record_id: int) -> Record:
        """Fetch a record owned by this worker."""
        record = self.records.get(record_id)
        if record is None:
            raise ClusterError(
                f"record {record_id} not on worker {self.worker_id}")
        return record

    def __len__(self) -> int:
        return len(self.records)


class SimulatedCluster:
    """A set of workers plus shared network accounting."""

    def __init__(self, n_workers: int, bounds: Rect, dims: int = 3,
                 network: NetworkModel | None = None, seed: int = 0,
                 obs: "Observability | None" = None,
                 faults: "FaultPlan | None" = None, **worker_kwargs):
        if n_workers < 1:
            raise ClusterError("need at least one worker")
        self.network_model = network if network is not None \
            else NetworkModel()
        self.network = NetworkStats()
        self.obs = obs if obs is not None else NULL_OBS
        self.faults = faults
        rng = random.Random(seed)
        self.workers = [Worker(i, bounds, dims=dims,
                               seed=rng.getrandbits(32), **worker_kwargs)
                        for i in range(n_workers)]
        for worker in self.workers:
            worker.faults = faults
        self.obs.registry.gauge("storm.cluster.workers").set(n_workers)

    @property
    def n_workers(self) -> int:
        """Number of workers in the cluster."""
        return len(self.workers)

    # -- fault control -----------------------------------------------------

    def set_fault_plan(self, faults: "FaultPlan | None") -> None:
        """Attach (or detach) a fault plan on every worker."""
        self.faults = faults
        for worker in self.workers:
            worker.faults = faults

    def crash_worker(self, worker_id: int) -> None:
        """Kill one worker (its open streams are lost)."""
        self.workers[worker_id].crash()
        self.obs.registry.counter("storm.cluster.fault.crashes").inc()

    def recover_worker(self, worker_id: int) -> None:
        """Bring a crashed worker back (without its streams)."""
        self.workers[worker_id].recover()

    def live_workers(self) -> list[Worker]:
        """Workers that are currently up (crash windows included)."""
        return [w for w in self.workers if not w.down]

    def charge_network(self, messages: int, payload_bytes: int,
                       node: str | None = None) -> float:
        """Tally one exchange and enforce the timeout.

        A slow node's latency multiplier (from the fault plan) scales
        the exchange before the timeout check, so talking to a
        straggler is what times out.  The traffic is tallied either
        way — the bytes were sent.
        """
        self.network.charge(messages=messages,
                            payload_bytes=payload_bytes)
        multiplier = 1.0
        if self.faults is not None and node is not None:
            multiplier = self.faults.latency_multiplier(node)
        return self.network_model.check(messages, payload_bytes,
                                        multiplier=multiplier)

    def total_records(self) -> int:
        """Records across all shards."""
        return sum(len(w) for w in self.workers)

    def reset_costs(self) -> None:
        """Zero the network and per-worker cost tallies."""
        self.network = NetworkStats()
        for w in self.workers:
            w.cost.reset()

    def max_worker_seconds(self,
                           model: CostModel = DEFAULT_COST_MODEL,
                           since: list[CostCounter] | None = None
                           ) -> float:
        """Parallel-execution time: the slowest worker's simulated I/O
        (a slow node's fault-plan latency multiplier scales its
        share)."""
        seconds = []
        for i, w in enumerate(self.workers):
            cost = w.cost if since is None \
                else w.cost.delta_from(since[i])
            multiplier = 1.0 if self.faults is None \
                else self.faults.latency_multiplier(w.node)
            seconds.append(model.simulated_seconds(cost) * multiplier)
        return max(seconds)

    def snapshot_costs(self) -> list[CostCounter]:
        """Per-worker cost snapshots (for delta timing)."""
        return [w.cost.snapshot() for w in self.workers]

    def total_worker_cost(self) -> CostCounter:
        """All workers' index costs merged into one fresh counter
        (callers should use this instead of hand-summing
        ``worker.cost`` fields)."""
        total = CostCounter()
        for w in self.workers:
            total.merge(w.cost)
        return total
