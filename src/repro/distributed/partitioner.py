"""Hilbert-range partitioning of records across workers.

Sorting by Hilbert key and cutting into contiguous ranges gives shards
that are simultaneously *balanced* (equal counts) and *spatially
coherent* (each shard covers a compact region), so range queries touch
few workers and per-worker canonical sets stay small — the property a
distributed Hilbert R-tree is built around.

With ``replication=k`` the partitioner also assigns each shard k - 1
replica holders (the next workers around the ring, chained placement):
:meth:`HilbertRangePartitioner.placement` lists the workers holding a
copy of a shard, primary first.  The distributed sampler fails a dead
worker's stream over to one of these holders.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.core.geometry import Rect
from repro.core.records import Record
from repro.errors import ClusterError
from repro.index.hilbert import HilbertEncoder

__all__ = ["HilbertRangePartitioner"]


class HilbertRangePartitioner:
    """Splits records into contiguous Hilbert-key ranges."""

    def __init__(self, bounds: Rect, shards: int, bits: int = 16,
                 dims: int = 3, replication: int = 1):
        if shards < 1:
            raise ClusterError("need at least one shard")
        if not 1 <= replication <= shards:
            raise ClusterError(
                "replication must be between 1 and the shard count")
        if bounds.dim != dims:
            raise ClusterError(
                f"bounds are {bounds.dim}-d but partitioner is {dims}-d")
        self.shards = shards
        self.dims = dims
        self.replication = replication
        self.encoder = HilbertEncoder(bounds, bits=bits)
        # Upper key bound per shard (exclusive), learned at split time.
        self._boundaries: list[int] | None = None

    def placement(self, shard: int) -> list[int]:
        """Workers holding a copy of a shard, primary first (chained
        ring placement: shard i replicates onto i+1, i+2, ...)."""
        if not 0 <= shard < self.shards:
            raise ClusterError(
                f"shard {shard} out of range for {self.shards} shards")
        return [(shard + r) % self.shards
                for r in range(self.replication)]

    def key(self, record: Record) -> int:
        """Hilbert curve position of a record's key."""
        return self.encoder.key(record.key(self.dims))

    def split(self, records: Iterable[Record]) -> list[list[Record]]:
        """Sort by curve position and cut into equal contiguous chunks.

        Also learns the shard boundaries used to route later updates.
        """
        ordered = sorted(records, key=self.key)
        n = len(ordered)
        if n == 0:
            self._boundaries = [2 ** 63] * self.shards
            return [[] for _ in range(self.shards)]
        out: list[list[Record]] = []
        boundaries: list[int] = []
        base, extra = divmod(n, self.shards)
        start = 0
        for i in range(self.shards):
            size = base + (1 if i < extra else 0)
            chunk = ordered[start:start + size]
            out.append(chunk)
            start += size
            if i < self.shards - 1 and start < n:
                boundaries.append(self.key(ordered[start]))
            else:
                boundaries.append(2 ** 63)
        self._boundaries = boundaries
        return out

    def shard_of(self, record: Record) -> int:
        """Route a record to its shard (after :meth:`split` ran)."""
        if self._boundaries is None:
            raise ClusterError("partitioner has not split any data yet")
        return bisect.bisect_right(self._boundaries[:-1],
                                   self.key(record))

    def balance(self, shards: Sequence[Sequence[Record]]) -> float:
        """max/mean shard size (1.0 = perfectly balanced)."""
        sizes = [len(s) for s in shards]
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean
