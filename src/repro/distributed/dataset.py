"""DistributedDataset: the cluster behind the engine's dataset API.

Lets a sharded data set register in a :class:`StormEngine` next to
local datasets: the engine's one-call analytics (`avg`, `count`,
`kde`, ...) and online sessions work unchanged, with samples drawn
through the distributed merge sampler and record lookups routed to the
owning worker.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.estimators.base import OnlineEstimator
from repro.core.geometry import Rect
from repro.core.records import Record, STRange
from repro.core.session import OnlineQuerySession
from repro.distributed.cluster import NetworkModel
from repro.distributed.dist_index import DistributedSTIndex
from repro.distributed.dist_sampler import DistributedSampler
from repro.errors import StormError
from repro.faults import FaultPlan
from repro.obs import NULL_OBS, Observability

__all__ = ["DistributedDataset"]


class DistributedDataset:
    """A sharded dataset exposing the local Dataset's session API."""

    def __init__(self, name: str, records: Iterable[Record],
                 n_workers: int = 4, dims: int = 3,
                 sampler_kind: str = "rs", batch_size: int = 32,
                 network: NetworkModel | None = None, seed: int = 0,
                 replication: int = 1,
                 faults: "FaultPlan | None" = None,
                 max_retries: int = 3, backoff_seconds: float = 0.05,
                 obs: Observability | None = None, **worker_kwargs):
        self.name = name
        self.dims = dims
        self.obs = obs if obs is not None else NULL_OBS
        self.index = DistributedSTIndex(records, n_workers=n_workers,
                                        dims=dims, network=network,
                                        seed=seed,
                                        sampler_kind=sampler_kind,
                                        replication=replication,
                                        faults=faults,
                                        **worker_kwargs)
        self.sampler = DistributedSampler(
            self.index, batch_size=batch_size,
            max_retries=max_retries, backoff_seconds=backoff_seconds)
        self.sampler.bind_observability(self.obs)
        self.obs.registry.gauge("storm.dataset.records",
                                dataset=name).set(len(self.index))

    # -- Dataset-compatible surface ---------------------------------------

    def __len__(self) -> int:
        return len(self.index)

    @property
    def cluster(self):
        """The underlying simulated cluster."""
        return self.index.cluster

    def set_fault_plan(self, faults: "FaultPlan | None") -> None:
        """(Re-)attach a fault plan to every worker in the cluster."""
        self.index.cluster.set_fault_plan(faults)

    def lookup(self, record_id: int) -> Record:
        """Fetch a record from its owning worker."""
        return self.index.lookup(record_id)

    def to_rect(self, query: "Rect | STRange") -> Rect:
        """Convert a query to this dataset's box type."""
        rect = self.index.to_rect(query)
        if rect.dim != self.dims:
            raise StormError(
                f"query is {rect.dim}-d but dataset {self.name} is "
                f"{self.dims}-d")
        return rect

    def insert(self, record: Record) -> None:
        """Route an insert to the owning shard."""
        self.index.insert(record)

    def delete(self, record_id: int) -> bool:
        """Delete by id (broadcast); returns whether it existed."""
        return self.index.delete(record_id)

    def session(self, query: "Rect | STRange",
                estimator: OnlineEstimator, method: str | None = None,
                rng: random.Random | None = None,
                expected_k: int | None = None,
                report_every: int = 16,
                with_replacement: bool = False,
                obs: Observability | None = None,
                labels: dict[str, object] | None = None
                ) -> OnlineQuerySession:
        """An online session over the cluster.

        ``method`` must be omitted (or ``"distributed-rs"``): the
        shard-local sampling index was fixed at construction.
        ``with_replacement`` is not offered by the distributed merge.
        """
        if method not in (None, self.sampler.name):
            raise StormError(
                f"distributed dataset {self.name!r} has no method "
                f"{method!r}; it samples via {self.sampler.name!r}")
        if with_replacement:
            raise StormError(
                "the distributed sampler is without-replacement only")
        use = obs if obs is not None else self.obs
        # The distributed sampler emits its own spans (dist_fanout and
        # the per-worker pull breakdown); rebind it so they land on the
        # session's tracer — EXPLAIN runs under a private tracer and
        # still has to see the whole trace under one id.
        if use is not self.sampler.obs:
            self.sampler.bind_observability(use)
        merged: dict[str, object] = {"dataset": self.name}
        if labels:
            merged.update(labels)
        return OnlineQuerySession(self.sampler, estimator,
                                  self.to_rect(query), self.lookup,
                                  rng=rng, report_every=report_every,
                                  obs=use,
                                  labels=merged)
