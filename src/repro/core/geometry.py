"""d-dimensional axis-aligned geometry used by every spatial index.

A point is a tuple of ``d`` floats.  A :class:`Rect` is a closed axis-aligned
box ``[lo, hi]`` in ``d`` dimensions.  Rects are immutable and hashable so
they can be used as dictionary keys (the canonical-set caches do this).

The paper works in ``R^d`` (Definition 1); STORM's spatio-temporal queries
are 3-dimensional boxes (longitude, latitude, time) built by
:class:`repro.core.records.STRange`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import GeometryError

Point = tuple[float, ...]

__all__ = ["Point", "Rect", "point_in_rect", "euclidean", "squared_distance"]


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points of equal dimension."""
    if len(a) != len(b):
        raise GeometryError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return math.sqrt(sum((x - y) * (x - y) for x, y in zip(a, b)))


def squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (avoids the sqrt when comparing)."""
    if len(a) != len(b):
        raise GeometryError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def point_in_rect(point: Sequence[float], lo: Sequence[float],
                  hi: Sequence[float]) -> bool:
    """Closed-box containment test without building a :class:`Rect`."""
    return all(l <= c <= h for c, l, h in zip(point, lo, hi))


class Rect:
    """A closed axis-aligned box ``[lo, hi]`` in ``d`` dimensions.

    ``lo`` and ``hi`` are tuples of equal length with ``lo[i] <= hi[i]``
    for every axis.  All predicates treat the box as closed on both ends,
    matching the usual R-tree convention.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Iterable[float], hi: Iterable[float]):
        lo = tuple(float(v) for v in lo)
        hi = tuple(float(v) for v in hi)
        if len(lo) != len(hi):
            raise GeometryError(
                f"lo has {len(lo)} coordinates but hi has {len(hi)}")
        if not lo:
            raise GeometryError("a Rect needs at least one dimension")
        for axis, (l, h) in enumerate(zip(lo, hi)):
            if l > h:
                raise GeometryError(
                    f"inverted box on axis {axis}: lo={l} > hi={h}")
            if math.isnan(l) or math.isnan(h):
                raise GeometryError(f"NaN coordinate on axis {axis}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # Rects are immutable: forbid attribute writes after __init__.
    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Rect is immutable")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """Degenerate box covering exactly one point."""
        return cls(point, point)

    @classmethod
    def bounding(cls, points: Iterable[Sequence[float]]) -> "Rect":
        """Smallest box containing all the given points."""
        pts = list(points)
        if not pts:
            raise GeometryError("cannot bound an empty point set")
        d = len(pts[0])
        lo = [math.inf] * d
        hi = [-math.inf] * d
        for p in pts:
            if len(p) != d:
                raise GeometryError("points have mixed dimensions")
            for i, c in enumerate(p):
                if c < lo[i]:
                    lo[i] = c
                if c > hi[i]:
                    hi[i] = c
        return cls(lo, hi)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest box containing all the given boxes."""
        rects = list(rects)
        if not rects:
            raise GeometryError("cannot union an empty rect set")
        d = rects[0].dim
        lo = list(rects[0].lo)
        hi = list(rects[0].hi)
        for r in rects[1:]:
            if r.dim != d:
                raise GeometryError("rects have mixed dimensions")
            for i in range(d):
                if r.lo[i] < lo[i]:
                    lo[i] = r.lo[i]
                if r.hi[i] > hi[i]:
                    hi[i] = r.hi[i]
        return cls(lo, hi)

    @classmethod
    def universe(cls, dim: int, bound: float = math.inf) -> "Rect":
        """Box covering all of R^dim (or ``[-bound, bound]^dim``)."""
        return cls((-bound,) * dim, (bound,) * dim)

    # -- basic properties --------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def center(self) -> Point:
        """Box midpoint."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def extent(self, axis: int) -> float:
        """Length of the box along one axis."""
        return self.hi[axis] - self.lo[axis]

    def area(self) -> float:
        """Volume of the box (product of extents)."""
        result = 1.0
        for l, h in zip(self.lo, self.hi):
            result *= h - l
        return result

    def margin(self) -> float:
        """Sum of extents (the R*-tree 'margin' split heuristic metric)."""
        return sum(h - l for l, h in zip(self.lo, self.hi))

    # -- predicates ---------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when the closed boxes share at least one point."""
        return all(sl <= oh and ol <= sh
                   for sl, sh, ol, oh
                   in zip(self.lo, self.hi, other.lo, other.hi))

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside ``self``."""
        return all(sl <= ol and oh <= sh
                   for sl, sh, ol, oh
                   in zip(self.lo, self.hi, other.lo, other.hi))

    def contains_point(self, point: Sequence[float]) -> bool:
        """Closed-box containment of a point."""
        if len(point) != self.dim:
            raise GeometryError(
                f"point has {len(point)} coordinates, rect is {self.dim}-d")
        return all(l <= c <= h for c, l, h in zip(point, self.lo, self.hi))

    # -- combinations --------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """Smallest box covering both boxes."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def union_point(self, point: Sequence[float]) -> "Rect":
        """Smallest box covering this box and a point."""
        return Rect(
            tuple(min(l, c) for l, c in zip(self.lo, point)),
            tuple(max(h, c) for h, c in zip(self.hi, point)),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed for ``self`` to also cover ``other``."""
        return self.union(other).area() - self.area()

    def min_distance(self, point: Sequence[float]) -> float:
        """Euclidean distance from a point to the box (0 if inside)."""
        total = 0.0
        for c, l, h in zip(point, self.lo, self.hi):
            if c < l:
                total += (l - c) ** 2
            elif c > h:
                total += (c - h) ** 2
        return math.sqrt(total)

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rect)
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect(lo={self.lo}, hi={self.hi})"
