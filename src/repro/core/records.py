"""The STORM record model and spatio-temporal query ranges.

STORM stores JSON-like records that carry a spatial location, a timestamp
and arbitrary attributes.  Indexes only see the *key* of a record — its
``(lon, lat, t)`` coordinates — while estimators read attributes through an
attribute accessor, mirroring the paper's split between the ST-indexing
module and the feature module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.core.geometry import Point, Rect
from repro.errors import GeometryError, StorageError

__all__ = ["Record", "STRange", "AttributeAccessor", "attribute_getter"]


def _coerce_record_id(raw: Any) -> int:
    """Record ids must be integers; tolerate integral floats/strings."""
    if isinstance(raw, bool):
        raise StorageError(f"record _id must be an integer, got {raw!r}")
    if isinstance(raw, int):
        return raw
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise StorageError(
            f"record _id must be numeric, got {raw!r}") from None
    if not value.is_integer():
        raise StorageError(
            f"record _id must be integral, got {raw!r}")
    return int(value)


@dataclass(frozen=True, slots=True)
class Record:
    """One spatio-temporal data record.

    ``record_id``
        Unique integer id within a dataset (assigned at import time).
    ``lon`` / ``lat``
        Spatial location.  Any planar coordinate system works; the synthetic
        workloads use WGS84-style degrees.
    ``t``
        Timestamp as seconds since an arbitrary epoch.
    ``attrs``
        Free-form attribute mapping (the JSON document body).
    """

    record_id: int
    lon: float
    lat: float
    t: float = 0.0
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def location(self) -> Point:
        """(lon, lat) tuple."""
        return (self.lon, self.lat)

    def key(self, dims: int = 3) -> Point:
        """Index key for this record: ``(lon, lat)`` or ``(lon, lat, t)``."""
        if dims == 2:
            return (self.lon, self.lat)
        if dims == 3:
            return (self.lon, self.lat, self.t)
        raise GeometryError(f"records only support 2 or 3 dims, got {dims}")

    def to_document(self) -> dict[str, Any]:
        """Serialise to the JSON document format of the storage engine."""
        doc = dict(self.attrs)
        doc["_id"] = self.record_id
        doc["lon"] = self.lon
        doc["lat"] = self.lat
        doc["t"] = self.t
        return doc

    @classmethod
    def from_document(cls, doc: Mapping[str, Any]) -> "Record":
        """Inverse of :meth:`to_document`.

        Some connectors hand back ``_id`` as a float or a numeric
        string (``3.0``, ``"17"``): integral values are coerced, while
        anything non-numeric or with a fractional part raises a typed
        :class:`~repro.errors.StorageError` instead of a bare
        ``ValueError``.
        """
        attrs = {k: v for k, v in doc.items()
                 if k not in ("_id", "lon", "lat", "t")}
        return cls(record_id=_coerce_record_id(doc["_id"]),
                   lon=float(doc["lon"]),
                   lat=float(doc["lat"]), t=float(doc.get("t", 0.0)),
                   attrs=attrs)


class STRange:
    """A spatio-temporal query range: a spatial box plus a time interval.

    This is the query object the user builds from the map UI in the paper
    (draw a region, pick a time window).  ``t_lo``/``t_hi`` may be omitted
    for purely spatial queries, in which case the range is unbounded in
    time.
    """

    __slots__ = ("lon_lo", "lat_lo", "lon_hi", "lat_hi", "t_lo", "t_hi")

    def __init__(self, lon_lo: float, lat_lo: float, lon_hi: float,
                 lat_hi: float, t_lo: float | None = None,
                 t_hi: float | None = None):
        if lon_lo > lon_hi or lat_lo > lat_hi:
            raise GeometryError("inverted spatial range")
        if (t_lo is None) != (t_hi is None):
            raise GeometryError("specify both t_lo and t_hi or neither")
        if t_lo is not None and t_lo > t_hi:  # type: ignore[operator]
            raise GeometryError("inverted time range")
        self.lon_lo = float(lon_lo)
        self.lat_lo = float(lat_lo)
        self.lon_hi = float(lon_hi)
        self.lat_hi = float(lat_hi)
        self.t_lo = None if t_lo is None else float(t_lo)
        self.t_hi = None if t_hi is None else float(t_hi)

    @classmethod
    def everywhere(cls) -> "STRange":
        """Range covering the whole plane at all times."""
        big = 1e18
        return cls(-big, -big, big, big)

    @property
    def has_time(self) -> bool:
        """Whether the range bounds time."""
        return self.t_lo is not None

    def to_rect(self, dims: int = 3) -> Rect:
        """Convert to the box the index understands.

        With ``dims=3`` a missing time interval becomes ``[-inf, inf]``
        clamped to a huge finite bound (indexes want finite boxes).
        """
        if dims == 2:
            return Rect((self.lon_lo, self.lat_lo),
                        (self.lon_hi, self.lat_hi))
        if dims == 3:
            big = 1e18
            t_lo = -big if self.t_lo is None else self.t_lo
            t_hi = big if self.t_hi is None else self.t_hi
            return Rect((self.lon_lo, self.lat_lo, t_lo),
                        (self.lon_hi, self.lat_hi, t_hi))
        raise GeometryError(f"STRange supports 2 or 3 dims, got {dims}")

    def contains(self, record: Record) -> bool:
        """Whether a record falls inside the spatio-temporal range."""
        if not (self.lon_lo <= record.lon <= self.lon_hi
                and self.lat_lo <= record.lat <= self.lat_hi):
            return False
        if self.t_lo is None:
            return True
        return self.t_lo <= record.t <= self.t_hi  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, STRange):
            return NotImplemented
        return (self.lon_lo, self.lat_lo, self.lon_hi, self.lat_hi,
                self.t_lo, self.t_hi) == (
                    other.lon_lo, other.lat_lo, other.lon_hi, other.lat_hi,
                    other.t_lo, other.t_hi)

    def __hash__(self) -> int:
        return hash((self.lon_lo, self.lat_lo, self.lon_hi, self.lat_hi,
                     self.t_lo, self.t_hi))

    def __repr__(self) -> str:
        time = ""
        if self.has_time:
            time = f", t=[{self.t_lo}, {self.t_hi}]"
        return (f"STRange(lon=[{self.lon_lo}, {self.lon_hi}], "
                f"lat=[{self.lat_lo}, {self.lat_hi}]{time})")


AttributeAccessor = Callable[[Record], float]


def attribute_getter(name: str, default: float | None = None
                     ) -> AttributeAccessor:
    """Build an accessor reading a numeric attribute from records.

    Estimators receive one of these so they stay agnostic of the record
    schema.  A missing attribute raises :class:`KeyError` unless a default
    is supplied.
    """
    def get(record: Record) -> float:
        if name == "lon":
            return record.lon
        if name == "lat":
            return record.lat
        if name == "t":
            return record.t
        value = record.attrs.get(name, default)
        if value is None:
            raise KeyError(
                f"record {record.record_id} has no attribute {name!r}")
        return float(value)

    # Estimators introspect this to decide whether the accessor reads a
    # coordinate column (lon/lat/t) and therefore qualifies for the
    # columnar absorb fast path.
    get.attribute_name = name  # type: ignore[attr-defined]
    return get


def iter_in_range(records: Iterator[Record], query: STRange
                  ) -> Iterator[Record]:
    """Filter a record stream to those inside the query range."""
    for record in records:
        if query.contains(record):
            yield record
