"""Cost-based selection of a sampling method per query.

The paper: "The query optimizer implements a set of basic query
optimization rules for deciding which method the sampler should use when
generating spatial online samples for a given query."

The rules here mirror the asymptotic costs of Section 3.1, instantiated
with the tree's measured shape (height, node count, fanout) and the
query's exact selectivity (one cheap counting traversal):

==============  =====================================================
method          expected block reads for k samples
==============  =====================================================
query-first     r(N) + q/B  (paid up front, regardless of k)
sample-first    k · N/q     (random reads; infinite when q = 0)
random-path     k · height  (random reads, plus rejection overhead)
ls-tree         Σ_j r(N/2^j) over visited levels + k/B sequential
rs-tree         r(N) canonical traversal + k/s buffer reads
==============  =====================================================

The optimizer scores whichever samplers the dataset actually has and
returns a ranked :class:`Plan`.  ``explain()`` exposes the scores — the
demo UI's "why did it pick RS-tree" panel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.ls_tree import LSTreeSampler
from repro.core.sampling.query_first import QueryFirstSampler
from repro.core.sampling.random_path import RandomPathSampler
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.core.sampling.sample_first import SampleFirstSampler
from repro.errors import OptimizerError
from repro.index.cost import CostModel, DEFAULT_COST_MODEL

__all__ = ["Plan", "QueryOptimizer", "DEFAULT_K_GUESS"]

DEFAULT_K_GUESS = 256


@dataclass(frozen=True, slots=True)
class Plan:
    """The optimizer's decision for one query."""

    method: str
    sampler: SpatialSampler
    expected_seconds: float
    scores: dict[str, float]
    q: int
    k_assumed: int

    def explain(self) -> str:
        """Human-readable scoring of every method, best first."""
        lines = [f"selectivity: q={self.q}, assumed k={self.k_assumed}"]
        for name, seconds in sorted(self.scores.items(),
                                    key=lambda kv: kv[1]):
            marker = " <-- chosen" if name == self.method else ""
            lines.append(f"  {name:<13} ~{seconds:.4g}s{marker}")
        return "\n".join(lines)


class QueryOptimizer:
    """Scores the available samplers for a query and picks the cheapest."""

    #: EMA weight of a new observation in the calibration factors.
    FEEDBACK_ALPHA = 0.3
    #: Calibration factors are clamped to this range so one outlier
    #: measurement cannot permanently disable a method.
    FEEDBACK_CLAMP = (0.1, 10.0)

    def __init__(self, samplers: dict[str, SpatialSampler],
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        if not samplers:
            raise OptimizerError("no samplers registered")
        self.samplers = dict(samplers)
        self.cost_model = cost_model
        # Learned multiplier per method: ratio of observed to predicted
        # cost, updated by record_outcome().  Starts neutral.
        self.calibration: dict[str, float] = {
            name: 1.0 for name in self.samplers}

    # -- shape statistics ------------------------------------------------

    def _any_tree(self):
        for sampler in self.samplers.values():
            tree = getattr(sampler, "tree", None)
            if tree is not None:
                return tree
        raise OptimizerError("no sampler exposes a backing tree")

    def _canonical_size_guess(self, n: int, leaf_capacity: int) -> float:
        """r(N) ≈ O(sqrt(N/B)) boundary leaves for a 2-d range."""
        if n <= 0:
            return 1.0
        return max(1.0, 2.0 * math.sqrt(n / max(1, leaf_capacity)))

    # -- scoring -----------------------------------------------------------

    def score(self, query: Rect, k: int) -> tuple[dict[str, float], int]:
        """Expected simulated seconds per method for k samples."""
        tree = self._any_tree()
        n = len(tree)
        q = tree.range_count(query)
        height = max(1, tree.height)
        leaf_cap = tree.leaf_capacity
        rnd = self.cost_model.random_read_seconds
        seq = self.cost_model.sequential_read_seconds
        r_n = self._canonical_size_guess(n, leaf_cap)
        scores: dict[str, float] = {}
        for name in self.samplers:
            if name == "query-first":
                blocks = r_n + q / leaf_cap
                scores[name] = r_n * rnd + (q / leaf_cap) * seq \
                    + k * self.cost_model.per_sample_cpu_seconds
            elif name == "sample-first":
                if q == 0:
                    scores[name] = math.inf
                else:
                    scores[name] = k * (n / q) * rnd
            elif name == "random-path":
                scores[name] = k * height * rnd * 1.2  # +rejections
            elif name == "ls-tree":
                levels = max(1.0, math.log2(max(2.0, q / max(1, k))))
                visit = sum(
                    self._canonical_size_guess(
                        int(n / 2 ** j), leaf_cap)
                    for j in range(int(levels),
                                   int(math.log2(max(2, n))) + 1))
                scores[name] = visit * rnd + (k / leaf_cap) * seq
            elif name == "rs-tree":
                buffer_size = getattr(self.samplers[name], "buffer_size",
                                      leaf_cap)
                refills = k / max(1, buffer_size)
                scores[name] = r_n * rnd + refills * rnd \
                    + k * self.cost_model.per_sample_cpu_seconds
            else:
                scores[name] = math.inf
        return scores, q

    def choose(self, query: Rect, expected_k: int | None = None) -> Plan:
        """Pick the cheapest method for the query.

        ``expected_k`` is how many samples the caller anticipates needing
        (from an accuracy target via
        :func:`repro.core.estimators.intervals.required_sample_size`, or
        the default guess for exploratory queries).
        """
        k = expected_k if expected_k is not None else DEFAULT_K_GUESS
        if k < 1:
            raise OptimizerError("expected_k must be >= 1")
        raw, q = self.score(query, k)
        scores = {name: s * self.calibration.get(name, 1.0)
                  for name, s in raw.items()}
        finite = {name: s for name, s in scores.items()
                  if math.isfinite(s)}
        if not finite:
            raise OptimizerError(
                "no sampling method is viable for this query")
        method = min(finite, key=finite.get)  # type: ignore[arg-type]
        return Plan(method=method, sampler=self.samplers[method],
                    expected_seconds=finite[method], scores=scores, q=q,
                    k_assumed=k)

    def record_outcome(self, method: str, query: Rect, k: int,
                       actual_seconds: float) -> None:
        """Feed back a measured cost to calibrate future choices.

        ``actual_seconds`` is the simulated (or measured) cost of
        drawing k samples with ``method`` on ``query``.  The learned
        multiplier is an EMA of observed/predicted ratios, clamped so a
        single bad measurement cannot blacklist a method forever.
        """
        if method not in self.samplers:
            raise OptimizerError(f"unknown method {method!r}")
        if k < 1 or actual_seconds < 0:
            return  # nothing useful to learn
        predicted, _ = self.score(query, k)
        baseline = predicted.get(method, math.inf)
        if not math.isfinite(baseline) or baseline <= 0:
            return
        ratio = actual_seconds / baseline
        lo, hi = self.FEEDBACK_CLAMP
        ratio = max(lo, min(hi, ratio))
        old = self.calibration.get(method, 1.0)
        self.calibration[method] = ((1 - self.FEEDBACK_ALPHA) * old
                                    + self.FEEDBACK_ALPHA * ratio)

    @classmethod
    def for_samplers(cls, *samplers: SpatialSampler,
                     cost_model: CostModel = DEFAULT_COST_MODEL
                     ) -> "QueryOptimizer":
        """Build from sampler instances, keyed by their names."""
        return cls({s.name: s for s in samplers}, cost_model=cost_model)


def default_sampler_suite(hilbert_tree, ls_forest=None,
                          rs_buffer_size: int = 64, rs_rng=None
                          ) -> dict[str, SpatialSampler]:
    """The standard five-sampler suite over shared index structures."""
    suite: dict[str, SpatialSampler] = {
        "query-first": QueryFirstSampler(hilbert_tree),
        "sample-first": SampleFirstSampler(hilbert_tree),
        "random-path": RandomPathSampler(hilbert_tree),
        "rs-tree": RSTreeSampler(hilbert_tree, buffer_size=rs_buffer_size,
                                 rng=rs_rng),
    }
    if ls_forest is not None:
        suite["ls-tree"] = LSTreeSampler(ls_forest)
    return suite
