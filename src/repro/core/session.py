"""Online query sessions: the query/analytics evaluator loop.

A session wires a sampler to an estimator for one query and drives the
online loop: pull a sample, absorb it, report a progressive estimate.  The
paper's three termination modes map onto :class:`StopCondition`:

* *user stop* — the caller simply stops iterating :meth:`run` (interactive
  exploration: issue the next query whenever satisfied);
* *accuracy requirement* — ``target_relative_error`` / ``target_half_width``;
* *best effort* — ``max_seconds`` wall-clock budget.

When the stream exhausts (k = q) the final estimate is exact, mirroring
"quality improves over time until the exact result is obtained".

The clock is injectable so tests are deterministic.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.estimators.base import Estimate, OnlineEstimator
from repro.core.geometry import Rect
from repro.core.records import Record
from repro.core.sampling.base import SpatialSampler
from repro.errors import EstimatorError, StormError
from repro.index.cost import CostCounter
from repro.obs import NULL_OBS, Observability

__all__ = ["StopCondition", "ProgressPoint", "OnlineQuerySession"]


@dataclass(frozen=True, slots=True)
class StopCondition:
    """When to end an online query.

    Any combination may be set; the session stops at the first one met.
    ``target_relative_error`` refers to the interval half-width relative
    to the current estimate (the paper's "error within x%").
    """

    max_samples: int | None = None
    max_seconds: float | None = None
    target_relative_error: float | None = None
    target_half_width: float | None = None
    level: float = 0.95

    def __post_init__(self):
        if (self.max_samples is None and self.max_seconds is None
                and self.target_relative_error is None
                and self.target_half_width is None):
            # Pure user-stop mode is allowed: the caller breaks the loop.
            return
        for name in ("max_samples", "max_seconds",
                     "target_relative_error", "target_half_width"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise StormError(f"{name} must be positive, got {value}")


@dataclass(slots=True)
class ProgressPoint:
    """One snapshot of a running query."""

    k: int
    elapsed: float
    estimate: Estimate
    cost: CostCounter
    done: bool = False
    reason: str = ""
    #: Reachable fraction of the queried population (< 1.0 only when a
    #: fault-tolerant sampler degraded gracefully — samples are then
    #: uniform over the *reachable* part; see docs/fault_tolerance.md).
    coverage: float = 1.0


class OnlineQuerySession:
    """Drives one (sampler, estimator, query) online-aggregation loop."""

    def __init__(self, sampler: SpatialSampler,
                 estimator: OnlineEstimator, query: Rect,
                 lookup: Callable[[int], Record],
                 rng: random.Random | None = None,
                 clock: Callable[[], float] = time.perf_counter,
                 report_every: int = 16,
                 with_replacement: bool = False,
                 obs: Observability | None = None,
                 labels: dict[str, object] | None = None):
        if report_every < 1:
            raise StormError("report_every must be >= 1")
        self.sampler = sampler
        self.estimator = estimator
        self.query = query
        self.lookup = lookup
        self.rng = rng if rng is not None else random.Random()
        self.clock = clock
        self.report_every = report_every
        self.with_replacement = with_replacement
        # Observability: spans per run ("query" > "range_count" /
        # "sample_stream") plus registry counters.  ``labels`` tag both
        # (datasets pass their name).  Defaults to the shared no-op.
        self.obs = obs if obs is not None else NULL_OBS
        self.labels = dict(labels) if labels else {}
        self.cost = CostCounter()
        # Resumable-session state: the stream, sample count and clock
        # origin survive across run() calls.
        self._stream: Iterator | None = None
        self._k = 0
        self._q: int | None = None
        self._start: float | None = None
        self._exhausted = False

    # ------------------------------------------------------------------

    def _coverage(self) -> float:
        """The sampler's reachable-population fraction (1.0 for local
        samplers; < 1.0 after graceful degradation)."""
        return getattr(self.sampler, "coverage", 1.0)

    def _current_estimate(self, level: float) -> Estimate | None:
        try:
            return self.estimator.estimate(level)
        except EstimatorError:
            return None  # not enough samples yet for this estimator

    def _met(self, stop: StopCondition, estimate: Estimate | None,
             elapsed: float, k: int, q: int) -> str:
        if k >= q and not self.with_replacement:
            coverage = self._coverage()
            if coverage < 1.0:
                # q only counted reachable shards: the result is exact
                # over what the cluster could reach, not the world.
                return f"exhausted (coverage {coverage:.0%})"
            return "exhausted (exact result)"
        if stop.max_samples is not None and k >= stop.max_samples:
            return "sample budget reached"
        if stop.max_seconds is not None and elapsed >= stop.max_seconds:
            return "time budget reached"
        if estimate is not None and estimate.interval is not None:
            if stop.target_half_width is not None \
                    and estimate.interval.half_width \
                    <= stop.target_half_width:
                return "target half-width reached"
            if stop.target_relative_error is not None \
                    and estimate.interval.relative_half_width() \
                    <= stop.target_relative_error:
                return "target relative error reached"
        return ""

    def _ensure_started(self) -> None:
        """Lazy initialisation shared by first run() and resumes."""
        if self._stream is not None or self._exhausted:
            return
        with self.obs.tracer.span("range_count", cost=self.cost) as sp:
            self._q = self.sampler.range_count(self.query, self.cost)
            sp.set("q", self._q)
        self.estimator.set_population_size(self._q)
        # With replacement, the finite-population correction and the
        # "k = q means exact" collapse do not apply.
        self.estimator.sampling_with_replacement = self.with_replacement
        if self._q == 0:
            self._exhausted = True
            return
        self._stream = self.sampler.open_stream(
            self.query, self.rng, cost=self.cost,
            with_replacement=self.with_replacement)

    def run(self, stop: StopCondition = StopCondition()
            ) -> Iterator[ProgressPoint]:
        """Yield progressive estimates until a stop condition fires.

        The caller may also just stop iterating — that is the paper's
        "user terminates the query" mode, and no further samples are
        drawn once the generator is dropped.

        Sessions are *resumable*: calling run() again after a stop
        condition fired continues the same sample stream and estimator
        ("s/he could also wait a bit longer for better quality").  The
        elapsed clock covers the session's whole life, so time budgets
        compose across resumes.
        """
        if self.with_replacement and stop.max_samples is None \
                and stop.max_seconds is None \
                and stop.target_relative_error is None \
                and stop.target_half_width is None:
            raise StormError(
                "with-replacement sessions never exhaust; set a sample,"
                " time, or accuracy stop condition")
        if self._start is None:
            self._start = self.clock()
        tracer = self.obs.tracer
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.session.runs",
                             sampler=self.sampler.name,
                             **self.labels).inc()
        qspan = tracer.begin("query", sampler=self.sampler.name,
                             resumed=self._k > 0, **self.labels)
        try:
            self._ensure_started()
            q = self._q
            assert q is not None
            qspan.set("q", q)
            if q == 0:
                qspan.set("reason", "empty range")
                yield ProgressPoint(
                    k=0, elapsed=self.clock() - self._start,
                    estimate=Estimate(
                        value=None, std_error=None,
                        interval=None, k=0, q=0, exact=True),
                    cost=self.cost.snapshot(), done=True,
                    reason="empty range")
                return
            # A resume may already satisfy the new stop condition.
            if self._k > 0:
                elapsed = self.clock() - self._start
                estimate = self._current_estimate(stop.level)
                reason = self._met(stop, estimate, elapsed, self._k, q)
                if reason:
                    qspan.set("reason", reason)
                    yield ProgressPoint(
                        k=self._k, elapsed=elapsed,
                        estimate=estimate if estimate is not None else
                        Estimate(value=None, std_error=None,
                                 interval=None, k=self._k, q=q),
                        cost=self.cost.snapshot(), done=True,
                        reason=reason, coverage=self._coverage())
                    return
            assert self._stream is not None
            k_before = self._k
            sspan = tracer.begin("sample_stream", cost=self.cost)
            # Per-draw latency quantiles (p50 vs p99 is what separates
            # a healthy stream from a degrading one); created once so
            # the loop below pays one observe(), and skipped entirely
            # on null registries (fake-clock tests stay undisturbed).
            latency = registry.histogram(
                "storm.sample.latency_seconds",
                sampler=self.sampler.name,
                **self.labels) if registry.enabled else None
            try:
                lookup = self.lookup
                while True:
                    # Batched fast path: pull samples up to the next
                    # report_every boundary in one draw_batch call, so
                    # stop conditions are still evaluated at exactly the
                    # same sample counts as the one-at-a-time loop.
                    want = self.report_every \
                        - (self._k % self.report_every)
                    if latency is None:
                        batch = self.sampler.draw_batch(self._stream,
                                                        want)
                    else:
                        drew_at = self.clock()
                        batch = self.sampler.draw_batch(self._stream,
                                                        want)
                        latency.observe(self.clock() - drew_at)
                    if not batch:
                        break  # stream exhausted
                    # Column-capable estimators absorb the batch's
                    # coordinates straight off the index entries; the
                    # rest get Records via lookup as before.
                    self.estimator.absorb_entry_batch(batch, lookup)
                    self._k += len(batch)
                    k = self._k
                    boundary = (k % self.report_every == 0) \
                        or (k >= q and not self.with_replacement)
                    if not boundary:
                        continue
                    elapsed = self.clock() - self._start
                    estimate = self._current_estimate(stop.level)
                    reason = self._met(stop, estimate, elapsed, k, q)
                    if estimate is not None or reason:
                        yield ProgressPoint(
                            k=k, elapsed=elapsed,
                            estimate=estimate if estimate is not None
                            else Estimate(value=None, std_error=None,
                                          interval=None, k=k, q=q),
                            cost=self.cost.snapshot(),
                            done=bool(reason), reason=reason,
                            coverage=self._coverage())
                    if reason:
                        qspan.set("reason", reason)
                        if k >= q and not self.with_replacement:
                            # Everything was emitted: close the stream
                            # now so sampler-held resources (and any
                            # spans it opened) release deterministically
                            # rather than at GC time.
                            self._stream.close()
                            self._exhausted = True
                        return
                self._exhausted = True
                if self._k < q and not self.with_replacement:
                    # The stream ended before covering q: a fault-
                    # tolerant sampler dropped unreachable shards
                    # (graceful degradation).  Report the shortfall
                    # honestly instead of going silent.
                    coverage = self._coverage()
                    reason = (f"stream exhausted "
                              f"(coverage {coverage:.0%})")
                    qspan.set("reason", reason)
                    qspan.set("coverage", coverage)
                    elapsed = self.clock() - self._start
                    estimate = self._current_estimate(stop.level)
                    yield ProgressPoint(
                        k=self._k, elapsed=elapsed,
                        estimate=estimate if estimate is not None
                        else Estimate(value=None, std_error=None,
                                      interval=None, k=self._k, q=q),
                        cost=self.cost.snapshot(), done=True,
                        reason=reason, coverage=coverage)
            finally:
                sspan.set("k", self._k - k_before)
                tracer.end(sspan)
                if registry.enabled:
                    registry.counter("storm.session.samples",
                                     sampler=self.sampler.name,
                                     **self.labels).inc(
                                         self._k - k_before)
        finally:
            qspan.set("k", self._k)
            if self._coverage() < 1.0:
                qspan.set("coverage", self._coverage())
            tracer.end(qspan)
            if registry.enabled and qspan.attrs.get("reason"):
                registry.counter("storm.session.stops",
                                 reason=qspan.attrs["reason"],
                                 **self.labels).inc()

    def run_to_stop(self, stop: StopCondition) -> ProgressPoint:
        """Run until a stop condition fires; return the final snapshot."""
        last: ProgressPoint | None = None
        for point in self.run(stop):
            last = point
        if last is None:
            raise StormError("session produced no progress points")
        return last

    def history(self, stop: StopCondition) -> list[ProgressPoint]:
        """Run to the stop condition, keeping every snapshot (used by the
        error-vs-time experiments)."""
        return list(self.run(stop))
