"""Online estimator protocol and shared running statistics.

An online estimator consumes records one at a time (as the sampler emits
them) and can produce a current :class:`Estimate` — value, standard error
and confidence interval — at any moment.  The query/analytics evaluator
drives this loop; users build *customised* estimators by implementing the
same two methods, which is the extension point the paper's demo highlights.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.estimators.intervals import ConfidenceInterval
from repro.core.records import Record
from repro.errors import EstimatorError

__all__ = ["Estimate", "OnlineEstimator", "RunningStats"]


@dataclass(frozen=True, slots=True)
class Estimate:
    """A progressive estimate at some point during query execution.

    ``exact`` is set when the estimate is no longer an approximation —
    either every in-range point was consumed (k = q) or the quantity is
    computed exactly from index metadata (e.g. COUNT).
    """

    value: Any
    std_error: float | None
    interval: ConfidenceInterval | None
    k: int
    q: int | None
    exact: bool = False

    def __repr__(self) -> str:
        tail = " exact" if self.exact else ""
        ci = f" ±{self.interval.half_width:.4g}" if self.interval else ""
        return (f"Estimate({self.value!r}{ci} k={self.k}"
                f" q={self.q}{tail})")


class OnlineEstimator(ABC):
    """Base class for estimators fed by the spatial online sampler.

    Subclasses implement :meth:`update` (absorb one sampled record) and
    :meth:`estimate` (current value + interval).  ``population_size`` is
    set by the evaluator once q is known; estimators use it for finite
    population corrections, SUM scaling and exactness detection.
    """

    def __init__(self) -> None:
        self.k = 0
        self.population_size: int | None = None
        # Set by the session when the sampler runs in with-replacement
        # mode: disables the finite population correction and the
        # "k = q is exact" collapse (repeats make both invalid).
        self.sampling_with_replacement = False

    def set_population_size(self, q: int) -> None:
        if q < 0:
            raise EstimatorError("population size cannot be negative")
        self.population_size = q

    @property
    def fpc_population(self) -> int | None:
        """Population size for variance corrections — ``None`` when the
        correction does not apply (with-replacement sampling)."""
        if self.sampling_with_replacement:
            return None
        return self.population_size

    def absorb(self, record: Record) -> None:
        """Feed one sampled record (bookkeeping + subclass update)."""
        self.k += 1
        self.update(record)

    def absorb_batch(self, records: "Sequence[Record]") -> None:
        """Feed a batch of sampled records in one call.

        Semantically identical to calling :meth:`absorb` per record;
        sessions use it with :meth:`SpatialSampler.draw_batch` to keep
        the per-sample hot loop inside one method frame.  Subclasses
        with vectorisable state may override.
        """
        for record in records:
            self.k += 1
            self.update(record)

    @abstractmethod
    def update(self, record: Record) -> None:
        """Absorb one record's contribution."""

    @abstractmethod
    def estimate(self, level: float = 0.95) -> Estimate:
        """Current estimate with a confidence interval at ``level``."""

    @property
    def is_exact(self) -> bool:
        """True once every in-range point was consumed (k = q)."""
        if self.sampling_with_replacement:
            return False
        return (self.population_size is not None
                and self.k >= self.population_size)

    def reset(self) -> None:
        self.k = 0


class RunningStats:
    """Welford's online mean/variance accumulator (numerically stable)."""

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Absorb one value."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 when n < 2)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def population_variance(self) -> float:
        """Biased (n denominator) variance."""
        if self.n < 1:
            return 0.0
        return self._m2 / self.n

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel aggregation; Chan et al.)."""
        merged = RunningStats()
        merged.n = self.n + other.n
        if merged.n == 0:
            return merged
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.n / merged.n
        merged._m2 = (self._m2 + other._m2
                      + delta * delta * self.n * other.n / merged.n)
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:
        return (f"RunningStats(n={self.n}, mean={self.mean:.6g}, "
                f"std={self.std:.6g})")
