"""Online estimator protocol and shared running statistics.

An online estimator consumes records one at a time (as the sampler emits
them) and can produce a current :class:`Estimate` — value, standard error
and confidence interval — at any moment.  The query/analytics evaluator
drives this loop; users build *customised* estimators by implementing the
same two methods, which is the extension point the paper's demo highlights.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.blocks import numpy_or_none as _numpy_or_none
from repro.core.estimators.intervals import ConfidenceInterval
from repro.core.records import Record
from repro.errors import EstimatorError

__all__ = ["Estimate", "OnlineEstimator", "RunningStats"]


@dataclass(frozen=True, slots=True)
class Estimate:
    """A progressive estimate at some point during query execution.

    ``exact`` is set when the estimate is no longer an approximation —
    either every in-range point was consumed (k = q) or the quantity is
    computed exactly from index metadata (e.g. COUNT).
    """

    value: Any
    std_error: float | None
    interval: ConfidenceInterval | None
    k: int
    q: int | None
    exact: bool = False

    def __repr__(self) -> str:
        tail = " exact" if self.exact else ""
        ci = f" ±{self.interval.half_width:.4g}" if self.interval else ""
        return (f"Estimate({self.value!r}{ci} k={self.k}"
                f" q={self.q}{tail})")


class OnlineEstimator(ABC):
    """Base class for estimators fed by the spatial online sampler.

    Subclasses implement :meth:`update` (absorb one sampled record) and
    :meth:`estimate` (current value + interval).  ``population_size`` is
    set by the evaluator once q is known; estimators use it for finite
    population corrections, SUM scaling and exactness detection.
    """

    def __init__(self) -> None:
        self.k = 0
        self.population_size: int | None = None
        # Set by the session when the sampler runs in with-replacement
        # mode: disables the finite population correction and the
        # "k = q is exact" collapse (repeats make both invalid).
        self.sampling_with_replacement = False

    def set_population_size(self, q: int) -> None:
        if q < 0:
            raise EstimatorError("population size cannot be negative")
        self.population_size = q

    @property
    def fpc_population(self) -> int | None:
        """Population size for variance corrections — ``None`` when the
        correction does not apply (with-replacement sampling)."""
        if self.sampling_with_replacement:
            return None
        return self.population_size

    def absorb(self, record: Record) -> None:
        """Feed one sampled record (bookkeeping + subclass update)."""
        self.k += 1
        self.update(record)

    def absorb_batch(self, records: "Sequence[Record]") -> None:
        """Feed a batch of sampled records in one call.

        Semantically identical to calling :meth:`absorb` per record;
        sessions use it with :meth:`SpatialSampler.draw_batch` to keep
        the per-sample hot loop inside one method frame.  Subclasses
        with vectorisable state may override.
        """
        for record in records:
            self.k += 1
            self.update(record)

    #: Whether :meth:`absorb_columns` may succeed for this estimator.
    #: Subclasses that can consume coordinate columns directly (AVG over
    #: lon/lat/t, unfiltered COUNT, the KDE) override this — possibly as
    #: a property, since it can depend on configuration.
    supports_columns: bool = False

    def absorb_columns(self, lons: "Sequence[float]",
                       lats: "Sequence[float]",
                       ts: "Sequence[float] | None") -> bool:
        """Absorb a batch given as parallel coordinate columns.

        The columnar fast path: a sampler batch arrives as three
        parallel sequences (``ts`` is ``None`` on 2-d indexes) and the
        estimator folds them in without any :class:`Record` being
        built.  Returns ``True`` when the batch was absorbed — the
        implementation must then have advanced ``self.k`` by the batch
        length — or ``False`` to make the caller fall back to the
        per-record path.
        """
        return False

    def absorb_entry_batch(self, entries, lookup) -> None:
        """Absorb a batch of raw index entries.

        ``entries`` are index ``Entry`` objects (``item_id`` + point
        key); ``lookup`` maps an item id to its :class:`Record`.  When
        the estimator consumes only coordinates, the columns are read
        straight off the entry points and no Record is materialised;
        otherwise every entry is resolved through ``lookup`` and fed to
        :meth:`absorb_batch` — identical semantics either way.
        """
        if not entries:
            return
        if self.supports_columns:
            points = [e.point for e in entries]
            lons = [p[0] for p in points]
            lats = [p[1] for p in points]
            ts = [p[2] for p in points] if len(points[0]) > 2 else None
            if self.absorb_columns(lons, lats, ts):
                return
        self.absorb_batch([lookup(e.item_id) for e in entries])

    @abstractmethod
    def update(self, record: Record) -> None:
        """Absorb one record's contribution."""

    @abstractmethod
    def estimate(self, level: float = 0.95) -> Estimate:
        """Current estimate with a confidence interval at ``level``."""

    @property
    def is_exact(self) -> bool:
        """True once every in-range point was consumed (k = q)."""
        if self.sampling_with_replacement:
            return False
        return (self.population_size is not None
                and self.k >= self.population_size)

    def reset(self) -> None:
        self.k = 0


class RunningStats:
    """Welford's online mean/variance accumulator (numerically stable)."""

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Absorb one value."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def add_many(self, values: "Sequence[float]") -> None:
        """Absorb a batch of values in one call.

        With numpy available the batch's moments are computed
        vectorised and folded in with one Chan et al. merge step
        (exactly :meth:`merge` against a throwaway accumulator, so the
        result matches the parallel-aggregation path bit-for-bit in
        structure); tiny batches and the stdlib path take the Welford
        loop.
        """
        n = len(values)
        if n == 0:
            return
        np = _numpy_or_none()
        if np is not None and n >= 16:
            arr = np.asarray(values, dtype=np.float64)
            bmean = float(arr.mean())
            bm2 = float(((arr - bmean) ** 2).sum())
            total = self.n + n
            delta = bmean - self.mean
            self.mean += delta * n / total
            self._m2 += bm2 + delta * delta * self.n * n / total
            self.n = total
            bmin = float(arr.min())
            bmax = float(arr.max())
            if bmin < self.min:
                self.min = bmin
            if bmax > self.max:
                self.max = bmax
            return
        for x in values:
            self.add(x)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 when n < 2)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def population_variance(self) -> float:
        """Biased (n denominator) variance."""
        if self.n < 1:
            return 0.0
        return self._m2 / self.n

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel aggregation; Chan et al.)."""
        merged = RunningStats()
        merged.n = self.n + other.n
        if merged.n == 0:
            return merged
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.n / merged.n
        merged._m2 = (self._m2 + other._m2
                      + delta * delta * self.n * other.n / merged.n)
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:
        return (f"RunningStats(n={self.n}, mean={self.mean:.6g}, "
                f"std={self.std:.6g})")
