"""Online GROUP BY aggregation.

Online aggregation's classic companion (Xu, Jermaine & Dobra, TODS 2008,
cited by the paper): estimate an aggregate *per group* from one shared
sample stream.  Each sampled record lands in its group's accumulator;
each group's mean gets a CLT/t interval, and the group's share of the
population (needed to scale SUM/COUNT per group) is itself estimated as
a proportion with a Wilson interval.

Groups with too few samples are reported but flagged ``low_support`` —
the UI treatment the group-by online aggregation literature recommends
instead of silently dropping small groups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.estimators.base import Estimate, OnlineEstimator, \
    RunningStats
from repro.core.estimators.intervals import (ConfidenceInterval,
                                             mean_interval,
                                             proportion_interval)
from repro.core.records import AttributeAccessor, Record
from repro.errors import EstimatorError

__all__ = ["GroupByEstimator", "GroupResult"]

GroupKeyFn = Callable[[Record], Hashable]


@dataclass(frozen=True, slots=True)
class GroupResult:
    """One group's progressive estimates."""

    key: Hashable
    samples: int                     # samples that fell in this group
    mean: float | None               # None for COUNT-only aggregation
    mean_interval: ConfidenceInterval | None
    share: float                     # estimated fraction of the range
    share_interval: ConfidenceInterval
    estimated_count: float | None    # share × q (None when q unknown)
    estimated_sum: float | None      # mean × count
    low_support: bool

    def __repr__(self) -> str:
        mean = "" if self.mean is None else f" mean={self.mean:.6g}"
        return (f"GroupResult({self.key!r} n={self.samples}"
                f"{mean} share={self.share:.1%})")


class GroupByEstimator(OnlineEstimator):
    """Per-group online aggregation over a shared sample stream.

    ``group_key`` extracts the group of a record (an attribute name or a
    callable).  ``attribute`` is optional: with it the estimator tracks
    per-group means/sums; without it, it is an online GROUP BY COUNT.
    ``min_support`` marks groups with fewer samples as low-support.
    """

    def __init__(self, group_key: "str | GroupKeyFn",
                 attribute: AttributeAccessor | None = None,
                 min_support: int = 10, max_groups: int = 10_000):
        super().__init__()
        if min_support < 1:
            raise EstimatorError("min_support must be >= 1")
        if max_groups < 1:
            raise EstimatorError("max_groups must be >= 1")
        if isinstance(group_key, str):
            field = group_key

            def key_fn(record: Record) -> Hashable:
                return record.attrs.get(field)

            self.group_key: GroupKeyFn = key_fn
        else:
            self.group_key = group_key
        self.attribute = attribute
        self.min_support = min_support
        self.max_groups = max_groups
        self._groups: dict[Hashable, RunningStats] = {}
        self._counts: dict[Hashable, int] = {}

    def update(self, record: Record) -> None:
        key = self.group_key(record)
        if key not in self._counts \
                and len(self._counts) >= self.max_groups:
            raise EstimatorError(
                f"more than {self.max_groups} distinct groups; raise "
                f"max_groups or aggregate a coarser key")
        self._counts[key] = self._counts.get(key, 0) + 1
        if self.attribute is not None:
            stats = self._groups.get(key)
            if stats is None:
                stats = self._groups[key] = RunningStats()
            stats.add(self.attribute(record))

    # ------------------------------------------------------------------

    def group(self, key: Hashable, level: float = 0.95) -> GroupResult:
        """The current estimate for one group."""
        if self.k == 0:
            raise EstimatorError("no samples absorbed yet")
        n = self._counts.get(key, 0)
        share_ci = proportion_interval(n, self.k, level,
                                       q=self.fpc_population)
        share = n / self.k
        q = self.population_size
        est_count = share * q if q is not None else None
        mean = mean_ci = est_sum = None
        if self.attribute is not None and n > 0:
            stats = self._groups[key]
            mean = stats.mean
            # The group's in-range population size is unknown; the
            # conservative interval omits the FPC.
            mean_ci = mean_interval(stats.mean, stats.variance, n, level)
            if est_count is not None:
                est_sum = mean * est_count
        return GroupResult(key=key, samples=n, mean=mean,
                           mean_interval=mean_ci, share=share,
                           share_interval=share_ci,
                           estimated_count=est_count,
                           estimated_sum=est_sum,
                           low_support=n < self.min_support)

    def groups(self, level: float = 0.95,
               order_by: str = "share") -> list[GroupResult]:
        """All groups, largest first (by ``share``, ``mean`` or key)."""
        if self.k == 0:
            raise EstimatorError("no samples absorbed yet")
        results = [self.group(key, level) for key in self._counts]
        if order_by == "share":
            results.sort(key=lambda g: (-g.share, repr(g.key)))
        elif order_by == "mean":
            results.sort(key=lambda g: (-(g.mean if g.mean is not None
                                          else -math.inf), repr(g.key)))
        elif order_by == "key":
            results.sort(key=lambda g: repr(g.key))
        else:
            raise EstimatorError(
                f"order_by must be share|mean|key, not {order_by!r}")
        return results

    def estimate(self, level: float = 0.95) -> Estimate:
        return Estimate(value=self.groups(level), std_error=None,
                        interval=None, k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self._groups = {}
        self._counts = {}
