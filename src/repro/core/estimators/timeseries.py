"""Online time-series aggregation: per-bucket estimates over a window.

The interactive UI pattern behind "measurements in this time period":
bucket the query's time range and estimate, per bucket, the record share
(traffic over time) and optionally an attribute's mean (e.g. temperature
by hour).  Implemented on the group-by machinery — the bucket index is
just a computed group key — so every bucket carries the same interval
guarantees, online.
"""

from __future__ import annotations

from repro.core.estimators.groupby import GroupByEstimator, GroupResult
from repro.core.records import AttributeAccessor, Record
from repro.errors import EstimatorError

__all__ = ["TimeHistogramEstimator"]


class TimeHistogramEstimator(GroupByEstimator):
    """Per-time-bucket online aggregation.

    ``t_lo``/``t_hi`` bound the histogram (normally the query's TIME
    range); records outside are clamped into the edge buckets (they can
    only appear if the spatial filter admits them).
    """

    def __init__(self, t_lo: float, t_hi: float, buckets: int = 24,
                 attribute: AttributeAccessor | None = None,
                 min_support: int = 5):
        if t_hi <= t_lo:
            raise EstimatorError("time window must have positive length")
        if buckets < 1:
            raise EstimatorError("need at least one bucket")
        self.t_lo = float(t_lo)
        self.t_hi = float(t_hi)
        self.buckets = buckets
        span = self.t_hi - self.t_lo

        def bucket_of(record: Record) -> int:
            i = int((record.t - self.t_lo) / span * buckets)
            return min(buckets - 1, max(0, i))

        super().__init__(bucket_of, attribute=attribute,
                         min_support=min_support,
                         max_groups=buckets)

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """[lo, hi) time bounds of one bucket."""
        if not 0 <= index < self.buckets:
            raise EstimatorError(
                f"bucket {index} out of range [0, {self.buckets})")
        width = (self.t_hi - self.t_lo) / self.buckets
        return (self.t_lo + index * width,
                self.t_lo + (index + 1) * width)

    def series(self, level: float = 0.95) -> list[GroupResult]:
        """All buckets in time order (empty buckets included)."""
        if self.k == 0:
            raise EstimatorError("no samples absorbed yet")
        return [self.group(i, level) for i in range(self.buckets)]

    def estimate(self, level: float = 0.95):
        """Progressive value = the time-ordered bucket series."""
        from repro.core.estimators.base import Estimate
        return Estimate(value=self.series(level), std_error=None,
                        interval=None, k=self.k,
                        q=self.population_size, exact=self.is_exact)
