"""Bootstrap confidence intervals for customized online estimators.

The paper's customized-analytics demo lets users "build complex,
advanced, customized online estimators, with user-derived,
operator-specific guarantees".  For statistics without a clean CLT form
(correlations, ratios, medians-of-ratios...), the standard tool is the
bootstrap (the paper cites Zeng et al.'s analytical bootstrap as the
fast variant; we implement the classic resampling form, which is exact
in spirit and plenty fast at online sample sizes).

:class:`BootstrapEstimator` wraps *any* ``statistic(records) -> float``:
it accumulates the sampled records and, on demand, resamples them B
times to produce a percentile interval.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.estimators.base import Estimate, OnlineEstimator
from repro.core.estimators.intervals import ConfidenceInterval
from repro.core.records import Record
from repro.errors import EstimatorError

__all__ = ["BootstrapEstimator", "bootstrap_interval"]

Statistic = Callable[[Sequence[Record]], float]


def bootstrap_interval(values: Sequence[float], level: float = 0.95
                       ) -> ConfidenceInterval:
    """Percentile interval from a sequence of bootstrap replicates."""
    if not values:
        raise EstimatorError("no bootstrap replicates")
    if not 0.0 < level < 1.0:
        raise EstimatorError(f"confidence level must be in (0,1): {level}")
    ordered = sorted(values)
    n = len(ordered)
    alpha = (1.0 - level) / 2.0
    lo_idx = min(n - 1, max(0, int(alpha * n)))
    hi_idx = min(n - 1, max(0, int((1.0 - alpha) * n)))
    return ConfidenceInterval(ordered[lo_idx], ordered[hi_idx], level)


class BootstrapEstimator(OnlineEstimator):
    """Online estimator for an arbitrary statistic with bootstrap CIs.

    Parameters
    ----------
    statistic:
        A function of the sampled records, e.g. a correlation
        coefficient.  Must be defined for any sample of size
        >= ``min_samples``.
    replicates:
        Bootstrap resamples per estimate (B).  100-500 is typical.
    min_samples:
        Estimates are refused below this sample size.
    seed:
        Resampling randomness (independent of the sampler's).
    """

    def __init__(self, statistic: Statistic, replicates: int = 200,
                 min_samples: int = 8, seed: int = 0):
        super().__init__()
        if replicates < 10:
            raise EstimatorError("need at least 10 bootstrap replicates")
        if min_samples < 2:
            raise EstimatorError("min_samples must be >= 2")
        self.statistic = statistic
        self.replicates = replicates
        self.min_samples = min_samples
        self.rng = random.Random(seed)
        self._records: list[Record] = []

    def update(self, record: Record) -> None:
        self._records.append(record)

    def estimate(self, level: float = 0.95) -> Estimate:
        n = len(self._records)
        if n < self.min_samples:
            raise EstimatorError(
                f"bootstrap needs >= {self.min_samples} samples, "
                f"have {n}")
        value = self.statistic(self._records)
        reps = []
        for _ in range(self.replicates):
            resample = [self._records[self.rng.randrange(n)]
                        for _ in range(n)]
            reps.append(self.statistic(resample))
        interval = bootstrap_interval(reps, level)
        spread = sorted(reps)
        se = (spread[int(0.84 * len(spread))]
              - spread[int(0.16 * len(spread))]) / 2.0
        return Estimate(value=value, std_error=se, interval=interval,
                        k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self._records = []
