"""Online kernel density estimation over a spatial grid.

The paper (Section 3.2): the density at a point p is
``f(p) = (1/q) Σ_{e ∈ P_Q} κ(d(e, p))`` — an *average* over the in-range
population, so each grid cell's density is estimated by the sample mean of
``κ(d(e, p))`` over the online samples, with a per-cell confidence
interval.  More samples → a sharper density map, which is exactly the
zoom-out demo of Figure 5.

The grid evaluation is vectorised with numpy: one ``update`` costs
O(cells) float ops.  Per-cell mean and variance accumulate with Welford's
update in array form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.estimators.base import Estimate, OnlineEstimator
from repro.core.estimators.intervals import finite_population_correction
from repro.core.records import Record
from repro.errors import EstimatorError

__all__ = ["GridSpec", "OnlineKDE", "gaussian_kernel",
           "epanechnikov_kernel"]


def gaussian_kernel(sq_dist: np.ndarray, bandwidth: float) -> np.ndarray:
    """Gaussian kernel on squared distances (unnormalised height 1)."""
    return np.exp(-sq_dist / (2.0 * bandwidth * bandwidth))


def epanechnikov_kernel(sq_dist: np.ndarray, bandwidth: float
                        ) -> np.ndarray:
    """Epanechnikov kernel: compact support of radius ``bandwidth``."""
    u2 = sq_dist / (bandwidth * bandwidth)
    return np.maximum(0.0, 0.75 * (1.0 - u2))


_KERNELS = {
    "gaussian": gaussian_kernel,
    "epanechnikov": epanechnikov_kernel,
}


@dataclass(frozen=True, slots=True)
class GridSpec:
    """A regular evaluation grid over a lon/lat box."""

    lon_lo: float
    lat_lo: float
    lon_hi: float
    lat_hi: float
    nx: int = 32
    ny: int = 32

    def __post_init__(self):
        if self.lon_lo >= self.lon_hi or self.lat_lo >= self.lat_hi:
            raise EstimatorError("grid box must have positive extent")
        if self.nx < 1 or self.ny < 1:
            raise EstimatorError("grid resolution must be >= 1")

    def centers(self) -> np.ndarray:
        """(nx·ny, 2) array of cell-center coordinates."""
        xs = np.linspace(self.lon_lo, self.lon_hi, self.nx * 2 + 1)[1::2]
        ys = np.linspace(self.lat_lo, self.lat_hi, self.ny * 2 + 1)[1::2]
        gx, gy = np.meshgrid(xs, ys, indexing="xy")
        return np.column_stack([gx.ravel(), gy.ravel()])

    @property
    def cells(self) -> int:
        """Total number of grid cells (nx * ny)."""
        return self.nx * self.ny

    def default_bandwidth(self) -> float:
        """A rule-of-thumb bandwidth: ~2 cells wide."""
        return 2.0 * max((self.lon_hi - self.lon_lo) / self.nx,
                         (self.lat_hi - self.lat_lo) / self.ny)


class OnlineKDE(OnlineEstimator):
    """Progressive density map with per-cell confidence intervals.

    ``estimate().value`` is a ``(ny, nx)`` array of density estimates;
    ``interval`` is ``None`` (the scalar protocol doesn't fit a field) —
    use :meth:`cell_intervals` for the per-cell bounds the paper's
    visualiser shades.
    """

    def __init__(self, grid: GridSpec, bandwidth: float | None = None,
                 kernel: str = "gaussian"):
        super().__init__()
        if kernel not in _KERNELS:
            raise EstimatorError(
                f"unknown kernel {kernel!r}; pick from {sorted(_KERNELS)}")
        self.grid = grid
        self.bandwidth = (bandwidth if bandwidth is not None
                          else grid.default_bandwidth())
        if self.bandwidth <= 0:
            raise EstimatorError("bandwidth must be positive")
        self.kernel_name = kernel
        self._kernel = _KERNELS[kernel]
        self._centers = grid.centers()
        self._mean = np.zeros(grid.cells)
        self._m2 = np.zeros(grid.cells)

    def update(self, record: Record) -> None:
        d2 = ((self._centers[:, 0] - record.lon) ** 2
              + (self._centers[:, 1] - record.lat) ** 2)
        contrib = self._kernel(d2, self.bandwidth)
        n = self.k  # absorb() already incremented
        delta = contrib - self._mean
        self._mean += delta / n
        self._m2 += delta * (contrib - self._mean)

    # The KDE reads only coordinates, so every batch qualifies for the
    # columnar path (this module already requires numpy).
    supports_columns = True

    def absorb_columns(self, lons, lats, ts) -> bool:
        n = len(lons)
        if n == 0:
            return True
        lon = np.asarray(lons, dtype=np.float64)
        lat = np.asarray(lats, dtype=np.float64)
        # (cells, n) kernel contributions for the whole batch, folded in
        # with one per-cell Chan et al. merge — the batch analogue of
        # the per-record Welford update, identical in exact arithmetic.
        d2 = ((self._centers[:, 0, None] - lon[None, :]) ** 2
              + (self._centers[:, 1, None] - lat[None, :]) ** 2)
        contrib = self._kernel(d2, self.bandwidth)
        bmean = contrib.mean(axis=1)
        bm2 = ((contrib - bmean[:, None]) ** 2).sum(axis=1)
        before = self.k
        total = before + n
        delta = bmean - self._mean
        self._mean += delta * (n / total)
        self._m2 += bm2 + delta * delta * (before * n / total)
        self.k = total
        return True

    def _field(self) -> np.ndarray:
        return self._mean.reshape(self.grid.ny, self.grid.nx)

    def _stderr(self) -> np.ndarray:
        if self.k < 2:
            return np.full(self.grid.cells, np.inf)
        var = self._m2 / (self.k - 1)
        fpc = finite_population_correction(self.k, self.fpc_population)
        return np.sqrt(var / self.k * fpc)

    def estimate(self, level: float = 0.95) -> Estimate:
        if self.k == 0:
            raise EstimatorError("no samples absorbed yet")
        se = self._stderr()
        mean_se = float(np.mean(se)) if self.k >= 2 else None
        return Estimate(value=self._field(), std_error=mean_se,
                        interval=None, k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def cell_intervals(self, level: float = 0.95
                       ) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) arrays of per-cell normal confidence bounds."""
        from scipy import stats as _stats
        if self.k < 2:
            raise EstimatorError("need two samples for cell intervals")
        z = float(_stats.t.ppf((1 + level) / 2, df=self.k - 1))
        se = self._stderr().reshape(self.grid.ny, self.grid.nx)
        field = self._field()
        return field - z * se, field + z * se

    def max_relative_error(self, level: float = 0.95,
                           floor: float = 1e-12) -> float:
        """Worst per-cell half-width relative to the map's peak density —
        the scalar quality the demo UI reports for a density map."""
        lo, hi = self.cell_intervals(level)
        peak = float(np.max(self._field()))
        if peak <= floor:
            return math.inf
        return float(np.max((hi - lo) / 2.0) / peak)

    def reset(self) -> None:
        super().reset()
        self._mean = np.zeros(self.grid.cells)
        self._m2 = np.zeros(self.grid.cells)
