"""Online short-text understanding (Figure 6b).

The Atlanta-snowstorm demo: sample tweets from a spatio-temporal window
and surface the terms whose document frequency stands out, with confidence
intervals on each frequency.  The estimator maintains per-term hit counts
over the sampled records; each term's population document-frequency gets a
Wilson interval, so the ranking stabilises as more samples arrive.

An optional *background* vocabulary (term → expected document frequency)
turns raw frequencies into lift scores, which is how "snow", "ice" and
"outage" float above everyday chatter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from repro.core.estimators.base import Estimate, OnlineEstimator
from repro.core.estimators.intervals import (ConfidenceInterval,
                                             proportion_interval)
from repro.core.records import Record
from repro.errors import EstimatorError

__all__ = ["ShortTextEstimator", "TermStat", "tokenize", "STOPWORDS"]

# A term starts with a letter; digits may follow ("user42", "word7"),
# but pure numbers never tokenize.
_TOKEN_RE = re.compile(r"[a-z][a-z0-9']+")

STOPWORDS = frozenset("""
a about after all also an and any are as at be because been but by can
could day did do even first for from get go going got had has have he her
him his how i if in into is it its just know like me more my new no not
now of on one only or other our out over said she so some than that the
their them then there these they this time to up us was we were what when
which who will with would you your rt amp https http via
""".split())


def tokenize(text: str, stopwords: frozenset[str] = STOPWORDS
             ) -> set[str]:
    """Lower-cased unique terms of a short text, stopwords removed."""
    return {tok for tok in _TOKEN_RE.findall(text.lower())
            if tok not in stopwords}


@dataclass(frozen=True, slots=True)
class TermStat:
    """One term's estimated document frequency within the query range."""

    term: str
    frequency: float            # estimated fraction of records using it
    interval: ConfidenceInterval
    hits: int                   # sampled records containing the term
    lift: float | None = None   # frequency / background frequency

    def __repr__(self) -> str:
        lift = f" lift={self.lift:.2f}" if self.lift is not None else ""
        return (f"TermStat({self.term!r} {self.frequency:.1%} "
                f"[{self.interval.lo:.1%}, {self.interval.hi:.1%}]{lift})")


class ShortTextEstimator(OnlineEstimator):
    """Estimate term document-frequencies from sampled short texts."""

    def __init__(self, text_field: str = "text",
                 stopwords: frozenset[str] = STOPWORDS,
                 background: Mapping[str, float] | None = None,
                 min_hits: int = 2):
        super().__init__()
        if min_hits < 1:
            raise EstimatorError("min_hits must be >= 1")
        self.text_field = text_field
        self.stopwords = stopwords
        self.background = dict(background) if background else None
        # Terms absent from the background vocabulary are the *most*
        # anomalous; give them a floor frequency so their lift is large
        # and finite instead of undefined.
        self._novel_floor = None
        if self.background:
            positive = [v for v in self.background.values() if v > 0]
            self._novel_floor = (min(positive) / 2.0 if positive
                                 else 1e-4)
        self.min_hits = min_hits
        self.term_hits: dict[str, int] = {}
        self.texts_seen = 0

    def update(self, record: Record) -> None:
        text = record.attrs.get(self.text_field)
        if not isinstance(text, str):
            return
        self.texts_seen += 1
        for term in tokenize(text, self.stopwords):
            self.term_hits[term] = self.term_hits.get(term, 0) + 1

    def term_stat(self, term: str, level: float = 0.95) -> TermStat:
        """Current frequency estimate and interval for one term."""
        if self.texts_seen == 0:
            raise EstimatorError("no texts sampled yet")
        hits = self.term_hits.get(term, 0)
        interval = proportion_interval(hits, self.texts_seen, level,
                                       q=self.fpc_population)
        lift = None
        if self.background is not None:
            base = self.background.get(term, 0.0)
            if base <= 0:
                base = self._novel_floor or 1e-4
            lift = (hits / self.texts_seen) / base
        return TermStat(term=term, frequency=hits / self.texts_seen,
                        interval=interval, hits=hits, lift=lift)

    def top_terms(self, n: int = 20, level: float = 0.95,
                  by_lift: bool = False) -> list[TermStat]:
        """The n most frequent (or highest-lift) terms with intervals."""
        if self.texts_seen == 0:
            raise EstimatorError("no texts sampled yet")
        stats = [self.term_stat(t, level) for t, h in self.term_hits.items()
                 if h >= self.min_hits]
        if by_lift:
            if self.background is None:
                raise EstimatorError(
                    "lift ranking needs a background vocabulary")
            stats = [s for s in stats if s.lift is not None]
            stats.sort(key=lambda s: (-s.lift, -s.hits, s.term))
        else:
            stats.sort(key=lambda s: (-s.hits, s.term))
        return stats[:n]

    def estimate(self, level: float = 0.95) -> Estimate:
        """The top-terms list as the progressive value."""
        top = self.top_terms(level=level,
                             by_lift=self.background is not None)
        return Estimate(value=top, std_error=None, interval=None,
                        k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self.term_hits = {}
        self.texts_seen = 0
