"""The feature module: online estimators over spatial sample streams.

The paper's design (Section 3.2): any population aggregate can be estimated
from a uniform sample, with accuracy characterised by confidence intervals
that tighten as the sample grows.  STORM ships a set of built-in estimators
and exposes the same machinery for customised ones.

``intervals``
    Confidence interval calculations: CLT/Student-t with the finite
    population correction (the samplers draw without replacement and q is
    known exactly from index counts), plus conservative Hoeffding bounds
    for bounded attributes.
``aggregates``
    COUNT / SUM / AVG / VAR / STD / proportion / quantile estimators.
``kde``
    Online kernel density estimation over a grid with per-cell intervals
    (the paper's population-density demo, Figure 5).
``clustering``
    Online k-means over the sample (the "clustering on samples" analytic).
``trajectory``
    Online approximate trajectory reconstruction (Figure 6a).
``text``
    Online short-text understanding: term frequencies with intervals
    (Figure 6b, the Atlanta snowstorm example).
"""

from repro.core.estimators.aggregates import (AvgEstimator, CountEstimator,
                                              ProportionEstimator,
                                              QuantileEstimator,
                                              SumEstimator,
                                              VarianceEstimator)
from repro.core.estimators.base import Estimate, OnlineEstimator
from repro.core.estimators.bootstrap import (BootstrapEstimator,
                                             bootstrap_interval)
from repro.core.estimators.groupby import GroupByEstimator, GroupResult
from repro.core.estimators.intervals import (ConfidenceInterval,
                                             hoeffding_interval,
                                             mean_interval)


def _needs_numpy(name: str):
    """A constructor-time stub for estimators whose module needs numpy.

    The KDE and k-means estimators are genuinely vectorised — there is
    no stdlib path for them — so on a host without numpy (the stdlib
    CI leg) their names still import, but instantiating one raises a
    typed :class:`~repro.errors.EstimatorError` instead of the bare
    ``ImportError`` the eager import used to throw at package load.
    """
    from repro.errors import EstimatorError

    class _Missing:
        def __init__(self, *args, **kwargs):
            raise EstimatorError(
                f"{name} requires numpy, which is not installed")

    _Missing.__name__ = _Missing.__qualname__ = name
    return _Missing


try:  # pragma: no cover - exercised via the no-numpy CI leg
    from repro.core.estimators.clustering import OnlineKMeans
    from repro.core.estimators.kde import GridSpec, OnlineKDE
except ImportError:  # pragma: no cover
    OnlineKMeans = _needs_numpy("OnlineKMeans")
    GridSpec = _needs_numpy("GridSpec")
    OnlineKDE = _needs_numpy("OnlineKDE")

from repro.core.estimators.text import ShortTextEstimator, TermStat
from repro.core.estimators.timeseries import TimeHistogramEstimator
from repro.core.estimators.trajectory import TrajectoryEstimator

__all__ = [
    "AvgEstimator",
    "BootstrapEstimator",
    "ConfidenceInterval",
    "bootstrap_interval",
    "CountEstimator",
    "Estimate",
    "GridSpec",
    "GroupByEstimator",
    "GroupResult",
    "OnlineEstimator",
    "OnlineKDE",
    "OnlineKMeans",
    "ProportionEstimator",
    "QuantileEstimator",
    "ShortTextEstimator",
    "SumEstimator",
    "TermStat",
    "TimeHistogramEstimator",
    "TrajectoryEstimator",
    "VarianceEstimator",
    "hoeffding_interval",
    "mean_interval",
]
