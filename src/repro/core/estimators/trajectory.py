"""Online approximate trajectory reconstruction (Figure 6a).

Given online samples of a single user's geo-tagged records over a time
window, reconstruct their trajectory as a time-ordered polyline.  Each new
sample refines the polyline; the reported quality metric is the mean time
gap between consecutive polyline vertices — a direct measure of temporal
resolution that shrinks as k grows.

The estimator keeps the samples sorted by timestamp (bisect insertion) and
offers linear interpolation (:meth:`position_at`) and discrepancy metrics
against another trajectory, which the tests use to show error decreasing
with sample size.
"""

from __future__ import annotations

import bisect
import math

from repro.core.estimators.base import Estimate, OnlineEstimator
from repro.core.records import Record
from repro.errors import EstimatorError

__all__ = ["Trajectory", "TrajectoryEstimator"]


class Trajectory:
    """A time-ordered polyline of (t, lon, lat) vertices."""

    __slots__ = ("vertices",)

    def __init__(self, vertices: list[tuple[float, float, float]]):
        self.vertices = vertices

    def __len__(self) -> int:
        return len(self.vertices)

    @property
    def duration(self) -> float:
        """Time span between the first and last vertex."""
        if len(self.vertices) < 2:
            return 0.0
        return self.vertices[-1][0] - self.vertices[0][0]

    def length(self) -> float:
        """Total polyline length in coordinate units."""
        total = 0.0
        for (_, x0, y0), (_, x1, y1) in zip(self.vertices,
                                            self.vertices[1:]):
            total += math.hypot(x1 - x0, y1 - y0)
        return total

    def position_at(self, t: float) -> tuple[float, float]:
        """Linear interpolation along the polyline (clamped at the ends)."""
        if not self.vertices:
            raise EstimatorError("empty trajectory")
        times = [v[0] for v in self.vertices]
        if t <= times[0]:
            return self.vertices[0][1], self.vertices[0][2]
        if t >= times[-1]:
            return self.vertices[-1][1], self.vertices[-1][2]
        i = bisect.bisect_right(times, t)
        t0, x0, y0 = self.vertices[i - 1]
        t1, x1, y1 = self.vertices[i]
        if t1 == t0:
            return x0, y0
        w = (t - t0) / (t1 - t0)
        return x0 + w * (x1 - x0), y0 + w * (y1 - y0)

    def mean_gap(self) -> float:
        """Mean time gap between consecutive vertices (resolution)."""
        if len(self.vertices) < 2:
            return math.inf
        return self.duration / (len(self.vertices) - 1)

    def discrepancy(self, other: "Trajectory", samples: int = 64) -> float:
        """Mean positional distance to ``other`` over a shared time grid.

        The error metric used to show reconstruction quality improving
        with more samples.
        """
        if not self.vertices or not other.vertices:
            raise EstimatorError("cannot compare empty trajectories")
        t_lo = max(self.vertices[0][0], other.vertices[0][0])
        t_hi = min(self.vertices[-1][0], other.vertices[-1][0])
        if t_hi < t_lo:
            raise EstimatorError("trajectories do not overlap in time")
        if samples < 2 or t_hi == t_lo:
            ax, ay = self.position_at(t_lo)
            bx, by = other.position_at(t_lo)
            return math.hypot(ax - bx, ay - by)
        total = 0.0
        for i in range(samples):
            t = t_lo + (t_hi - t_lo) * i / (samples - 1)
            ax, ay = self.position_at(t)
            bx, by = other.position_at(t)
            total += math.hypot(ax - bx, ay - by)
        return total / samples


class TrajectoryEstimator(OnlineEstimator):
    """Reconstruct one entity's trajectory from its sampled records.

    ``key_field`` / ``key_value`` filter the sample stream to one entity
    (e.g. one twitter user); records not matching are counted but ignored,
    which is what happens when sampling a region containing many users.
    """

    def __init__(self, key_field: str | None = None,
                 key_value: object | None = None):
        super().__init__()
        self.key_field = key_field
        self.key_value = key_value
        self._vertices: list[tuple[float, float, float]] = []

    def update(self, record: Record) -> None:
        if self.key_field is not None \
                and record.attrs.get(self.key_field) != self.key_value:
            return
        bisect.insort(self._vertices, (record.t, record.lon, record.lat))

    @property
    def matched(self) -> int:
        """Sampled records that matched the entity filter so far."""
        return len(self._vertices)

    def trajectory(self) -> Trajectory:
        """Snapshot of the current reconstructed trajectory."""
        return Trajectory(list(self._vertices))

    def estimate(self, level: float = 0.95) -> Estimate:
        if not self._vertices:
            raise EstimatorError("no matching records sampled yet")
        traj = self.trajectory()
        return Estimate(value=traj, std_error=traj.mean_gap(),
                        interval=None, k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self._vertices = []
