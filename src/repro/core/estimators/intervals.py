"""Confidence interval machinery for online estimators.

The statistical backbone of online aggregation (Hellerstein et al., Haas):
the sample mean of k uniform samples is unbiased for the population mean,
and by the CLT ``x̄ − µ → Normal(0, σ²/k)``.  Because STORM samples
*without replacement* and knows the population size ``q`` exactly (from
index counts), the variance gets the finite population correction
``(q − k)/(q − 1)`` — estimates become *exact* (zero-width intervals) as
``k → q``.

Small samples use the Student-t quantile rather than the normal one.  For
attributes with known bounds, :func:`hoeffding_interval` offers a
conservative distribution-free alternative.

scipy is preferred but optional (the no-numpy CI leg runs without it):
normal quantiles fall back to the stdlib ``statistics.NormalDist`` and
Student-t quantiles to Hill's asymptotic expansion, accurate to a few
1e-5 for the k ≥ 2 regime these intervals are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist

try:  # pragma: no cover - exercised via the no-numpy CI leg
    from scipy import stats as _stats
except ImportError:  # pragma: no cover
    _stats = None

from repro.errors import EstimatorError

__all__ = [
    "ConfidenceInterval",
    "finite_population_correction",
    "mean_interval",
    "hoeffding_interval",
    "proportion_interval",
    "required_sample_size",
]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A two-sided interval ``[lo, hi]`` holding with probability
    ``level`` (e.g. 0.95)."""

    lo: float
    hi: float
    level: float

    @property
    def width(self) -> float:
        """hi - lo."""
        return self.hi - self.lo

    @property
    def half_width(self) -> float:
        """Half of the interval width (the +/- margin)."""
        return (self.hi - self.lo) / 2.0

    @property
    def center(self) -> float:
        """Interval midpoint."""
        return (self.lo + self.hi) / 2.0

    def contains(self, value: float) -> bool:
        """Whether a value lies inside the closed interval."""
        return self.lo <= value <= self.hi

    def relative_half_width(self) -> float:
        """Half-width relative to the center (the paper's "error x%")."""
        center = abs(self.center)
        if center == 0.0:
            return math.inf if self.width > 0 else 0.0
        return self.half_width / center

    def __repr__(self) -> str:
        return (f"CI[{self.lo:.6g}, {self.hi:.6g}] "
                f"@{self.level:.0%}")


def finite_population_correction(k: int, q: int | None) -> float:
    """Variance shrink factor for sampling k of q without replacement."""
    if q is None or q <= 1:
        return 1.0
    if k >= q:
        return 0.0
    return (q - k) / (q - 1)


def _t_ppf_fallback(tail: float, df: int) -> float:
    """Student-t quantile without scipy (Hill 1970 expansion).

    Inverts the normal quantile through the Cornish-Fisher-style series
    in 1/df; worst-case error is a few 1e-5 over the levels the
    estimators request, collapsing to the normal quantile as df grows.
    """
    z = NormalDist().inv_cdf(tail)
    if df >= 10**6:
        return z
    g1 = (z**3 + z) / 4.0
    g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
    g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
    g4 = (79 * z**9 + 776 * z**7 + 1482 * z**5
          - 1920 * z**3 - 945 * z) / 92160.0
    return z + g1 / df + g2 / df**2 + g3 / df**3 + g4 / df**4


def _critical_value(level: float, k: int, use_t: bool) -> float:
    if not 0.0 < level < 1.0:
        raise EstimatorError(f"confidence level must be in (0,1): {level}")
    tail = (1.0 + level) / 2.0
    if use_t and k >= 2:
        if _stats is None:
            return _t_ppf_fallback(tail, k - 1)
        return float(_stats.t.ppf(tail, df=k - 1))
    if _stats is None:
        return float(NormalDist().inv_cdf(tail))
    return float(_stats.norm.ppf(tail))


def mean_interval(mean: float, sample_variance: float, k: int,
                  level: float = 0.95, q: int | None = None,
                  use_t: bool = True) -> ConfidenceInterval:
    """CLT interval for a population mean from k without-replacement
    samples.

    ``sample_variance`` is the unbiased (k−1 denominator) sample variance.
    ``q`` enables the finite population correction; ``use_t`` switches to
    Student-t quantiles (recommended, matters for small k).
    """
    if k < 1:
        raise EstimatorError("need at least one sample for an interval")
    if sample_variance < 0:
        raise EstimatorError("variance cannot be negative")
    if k == 1:
        # No variance information at all: the honest answer is "unbounded".
        return ConfidenceInterval(-math.inf, math.inf, level)
    fpc = finite_population_correction(k, q)
    se = math.sqrt(sample_variance / k * fpc)
    z = _critical_value(level, k, use_t)
    return ConfidenceInterval(mean - z * se, mean + z * se, level)


def hoeffding_interval(mean: float, k: int, lo: float, hi: float,
                       level: float = 0.95) -> ConfidenceInterval:
    """Distribution-free interval for the mean of a [lo, hi]-bounded
    attribute (Hoeffding's inequality).  Conservative but valid at any k."""
    if k < 1:
        raise EstimatorError("need at least one sample for an interval")
    if hi < lo:
        raise EstimatorError("attribute bounds are inverted")
    if not 0.0 < level < 1.0:
        raise EstimatorError(f"confidence level must be in (0,1): {level}")
    span = hi - lo
    eps = span * math.sqrt(math.log(2.0 / (1.0 - level)) / (2.0 * k))
    return ConfidenceInterval(mean - eps, mean + eps, level)


def proportion_interval(successes: int, k: int, level: float = 0.95,
                        q: int | None = None) -> ConfidenceInterval:
    """Wilson score interval for a population proportion, with FPC."""
    if k < 1:
        raise EstimatorError("need at least one sample for an interval")
    if not 0 <= successes <= k:
        raise EstimatorError("successes must be within [0, k]")
    z = _critical_value(level, k, use_t=False)
    z *= math.sqrt(finite_population_correction(k, q))
    p = successes / k
    denom = 1.0 + z * z / k
    center = (p + z * z / (2 * k)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / k
                                     + z * z / (4 * k * k))
    return ConfidenceInterval(max(0.0, center - margin),
                              min(1.0, center + margin), level)


def required_sample_size(sample_variance: float, target_half_width: float,
                         level: float = 0.95, q: int | None = None) -> int:
    """Samples needed so the mean interval shrinks to the target
    half-width (planning helper for accuracy-bounded queries)."""
    if target_half_width <= 0:
        raise EstimatorError("target half-width must be positive")
    if sample_variance <= 0:
        return 1
    z = _critical_value(level, 10**9, use_t=False)
    k = (z * z * sample_variance) / (target_half_width ** 2)
    if q is not None and q > 1:
        # Solve k with the FPC folded in: k' = k / (1 + (k-1)/q).
        k = k / (1.0 + (k - 1.0) / q)
        k = min(k, q)
    return max(1, math.ceil(k))
