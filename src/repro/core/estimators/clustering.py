"""Online spatial clustering on samples.

Section 3.2: "Other spatial analytics tasks, such as clustering, can also
be performed on a sample of points.  Intuitively, the clustering quality
also improves as the sample size increases."

:class:`OnlineKMeans` accumulates the sample and, on demand, runs Lloyd's
algorithm (k-means++ seeding, numpy inner loop) over the points gathered
so far.  Centers are warm-started from the previous call, so successive
estimates refine rather than restart — the "online" behaviour the demo
shows.  The inertia (within-cluster sum of squares) is reported per point,
making it an unbiased-style estimate of the population's per-point inertia
under the current centers.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.estimators.base import Estimate, OnlineEstimator
from repro.core.records import Record
from repro.errors import EstimatorError

__all__ = ["OnlineKMeans", "KMeansResult", "kmeans"]


class KMeansResult:
    """Outcome of one k-means fit over the current sample."""

    __slots__ = ("centers", "labels", "inertia_per_point", "iterations",
                 "sizes")

    def __init__(self, centers: np.ndarray, labels: np.ndarray,
                 inertia_per_point: float, iterations: int):
        self.centers = centers
        self.labels = labels
        self.inertia_per_point = inertia_per_point
        self.iterations = iterations
        self.sizes = np.bincount(labels, minlength=len(centers))

    def __repr__(self) -> str:
        return (f"KMeansResult(k={len(self.centers)}, "
                f"inertia/pt={self.inertia_per_point:.4g}, "
                f"iters={self.iterations})")


def _kmeans_pp_init(points: np.ndarray, k: int, rng: random.Random
                    ) -> np.ndarray:
    """k-means++ seeding."""
    n = len(points)
    centers = [points[rng.randrange(n)]]
    d2 = np.sum((points - centers[0]) ** 2, axis=1)
    for _ in range(1, k):
        total = float(d2.sum())
        if total <= 0:
            centers.append(points[rng.randrange(n)])
            continue
        r = rng.random() * total
        idx = int(np.searchsorted(np.cumsum(d2), r))
        idx = min(idx, n - 1)
        centers.append(points[idx])
        d2 = np.minimum(d2, np.sum((points - centers[-1]) ** 2, axis=1))
    return np.array(centers)


def kmeans(points: np.ndarray, k: int, rng: random.Random,
           initial: np.ndarray | None = None, max_iter: int = 50,
           tol: float = 1e-7) -> KMeansResult:
    """Lloyd's algorithm; ``initial`` warm-starts the centers."""
    n = len(points)
    if n < k:
        raise EstimatorError(f"need at least k={k} points, have {n}")
    centers = (np.array(initial, dtype=float) if initial is not None
               and len(initial) == k else _kmeans_pp_init(points, k, rng))
    labels = np.zeros(n, dtype=int)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        # Assign.
        d2 = np.sum((points[:, None, :] - centers[None, :, :]) ** 2,
                    axis=2)
        labels = np.argmin(d2, axis=1)
        # Update.
        new_centers = centers.copy()
        for j in range(k):
            members = points[labels == j]
            if len(members):
                new_centers[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the worst-fit point.
                worst = int(np.argmax(np.min(d2, axis=1)))
                new_centers[j] = points[worst]
        shift = float(np.max(np.sum((new_centers - centers) ** 2, axis=1)))
        centers = new_centers
        if shift <= tol:
            break
    d2 = np.sum((points[:, None, :] - centers[None, :, :]) ** 2, axis=2)
    labels = np.argmin(d2, axis=1)
    inertia = float(np.min(d2, axis=1).sum()) / n
    return KMeansResult(centers, labels, inertia, iterations)


class OnlineKMeans(OnlineEstimator):
    """k-means over the growing spatial sample, warm-started per call."""

    def __init__(self, n_clusters: int, seed: int = 0):
        super().__init__()
        if n_clusters < 1:
            raise EstimatorError("need at least one cluster")
        self.n_clusters = n_clusters
        self.rng = random.Random(seed)
        self._points: list[tuple[float, float]] = []
        self._last_centers: np.ndarray | None = None

    def update(self, record: Record) -> None:
        self._points.append((record.lon, record.lat))

    def estimate(self, level: float = 0.95) -> Estimate:
        if len(self._points) < self.n_clusters:
            raise EstimatorError(
                f"need at least {self.n_clusters} samples, "
                f"have {len(self._points)}")
        result = kmeans(np.array(self._points), self.n_clusters, self.rng,
                        initial=self._last_centers)
        self._last_centers = result.centers
        return Estimate(value=result, std_error=None, interval=None,
                        k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self._points = []
        self._last_centers = None
