"""Online estimators for the standard spatio-temporal aggregates.

These are the paper's "basic spatio-temporal aggregations": COUNT, SUM,
AVG, VAR/STD, proportions under a predicate, and quantiles.  Each consumes
the sampler's stream and reports an unbiased value with an interval that
tightens as k grows — and collapses to exact once k = q.

Knowing q exactly (from index counts) is what turns AVG estimates into SUM
estimates: ``SUM = q · AVG`` with the interval scaled by q.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable

try:  # pragma: no cover - exercised via the no-numpy CI leg
    from scipy import stats as _stats
except ImportError:  # pragma: no cover
    _stats = None

from repro.core.estimators.base import Estimate, OnlineEstimator, \
    RunningStats
from repro.core.estimators.intervals import (ConfidenceInterval,
                                             mean_interval,
                                             proportion_interval)
from repro.core.records import AttributeAccessor, Record
from repro.errors import EstimatorError

__all__ = [
    "AvgEstimator",
    "CountEstimator",
    "ProportionEstimator",
    "QuantileEstimator",
    "SumEstimator",
    "VarianceEstimator",
]


def _scipy_stats():
    """scipy.stats, or a typed error where no stdlib fallback exists.

    AVG/SUM/COUNT/proportion intervals degrade gracefully without scipy
    (see :mod:`repro.core.estimators.intervals`); the chi-square and
    binomial quantiles below have no reasonable stdlib substitute.
    """
    if _stats is None:
        raise EstimatorError(
            "this estimator's confidence interval requires scipy, "
            "which is not installed")
    return _stats


class AvgEstimator(OnlineEstimator):
    """Sample mean of an attribute — unbiased for the population mean."""

    def __init__(self, attribute: AttributeAccessor):
        super().__init__()
        self.attribute = attribute
        # Accessors built by `attribute_getter` advertise their source
        # attribute; coordinate-backed ones unlock the columnar path.
        self._column = getattr(attribute, "attribute_name", None)
        self.stats = RunningStats()

    @property
    def supports_columns(self) -> bool:  # type: ignore[override]
        return self._column in ("lon", "lat", "t")

    def absorb_columns(self, lons, lats, ts) -> bool:
        if self._column == "lon":
            values = lons
        elif self._column == "lat":
            values = lats
        elif self._column == "t" and ts is not None:
            values = ts
        else:
            return False
        self.stats.add_many(values)
        self.k += len(values)
        return True

    def update(self, record: Record) -> None:
        self.stats.add(self.attribute(record))

    def estimate(self, level: float = 0.95) -> Estimate:
        if self.k == 0:
            raise EstimatorError("no samples absorbed yet")
        interval = mean_interval(self.stats.mean, self.stats.variance,
                                 self.k, level, q=self.fpc_population)
        return Estimate(value=self.stats.mean,
                        std_error=self.stats.std / math.sqrt(self.k),
                        interval=interval, k=self.k,
                        q=self.population_size, exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self.stats = RunningStats()


class SumEstimator(OnlineEstimator):
    """``SUM = q · mean`` — needs the exact q the index provides."""

    def __init__(self, attribute: AttributeAccessor):
        super().__init__()
        self._avg = AvgEstimator(attribute)

    def set_population_size(self, q: int) -> None:
        super().set_population_size(q)
        self._avg.set_population_size(q)

    @property
    def supports_columns(self) -> bool:  # type: ignore[override]
        return self._avg.supports_columns

    def absorb_columns(self, lons, lats, ts) -> bool:
        self._avg.k = self.k
        if not self._avg.absorb_columns(lons, lats, ts):
            return False
        self.k = self._avg.k
        return True

    def update(self, record: Record) -> None:
        self._avg.k = self.k
        self._avg.update(record)

    def estimate(self, level: float = 0.95) -> Estimate:
        if self.population_size is None:
            raise EstimatorError(
                "SUM estimation needs the population size q")
        self._avg.k = self.k
        self._avg.sampling_with_replacement = \
            self.sampling_with_replacement
        inner = self._avg.estimate(level)
        q = self.population_size
        interval = ConfidenceInterval(inner.interval.lo * q,
                                      inner.interval.hi * q, level)
        se = None if inner.std_error is None else inner.std_error * q
        return Estimate(value=inner.value * q, std_error=se,
                        interval=interval, k=self.k, q=q,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self._avg.reset()


class CountEstimator(OnlineEstimator):
    """COUNT(*) over the range — exact from index metadata.

    With a ``predicate`` it becomes COUNT(*) WHERE pred, estimated as
    ``q × proportion`` of samples satisfying the predicate.
    """

    def __init__(self, predicate: Callable[[Record], bool] | None = None):
        super().__init__()
        self.predicate = predicate
        self.hits = 0

    @property
    def supports_columns(self) -> bool:  # type: ignore[override]
        return self.predicate is None

    def absorb_columns(self, lons, lats, ts) -> bool:
        if self.predicate is not None:
            return False
        n = len(lons)
        self.hits += n
        self.k += n
        return True

    def update(self, record: Record) -> None:
        if self.predicate is None or self.predicate(record):
            self.hits += 1

    def estimate(self, level: float = 0.95) -> Estimate:
        q = self.population_size
        if q is None:
            raise EstimatorError("COUNT estimation needs q from the index")
        if self.predicate is None:
            interval = ConfidenceInterval(float(q), float(q), level)
            return Estimate(value=q, std_error=0.0, interval=interval,
                            k=self.k, q=q, exact=True)
        if self.k == 0:
            raise EstimatorError("no samples absorbed yet")
        prop = proportion_interval(self.hits, self.k, level,
                                   q=self.fpc_population)
        value = q * self.hits / self.k
        interval = ConfidenceInterval(prop.lo * q, prop.hi * q, level)
        p = self.hits / self.k
        se = q * math.sqrt(max(p * (1 - p), 0.0) / self.k)
        return Estimate(value=value, std_error=se, interval=interval,
                        k=self.k, q=q, exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self.hits = 0


class ProportionEstimator(OnlineEstimator):
    """Fraction of in-range records satisfying a predicate (Wilson CI)."""

    def __init__(self, predicate: Callable[[Record], bool]):
        super().__init__()
        self.predicate = predicate
        self.hits = 0

    def update(self, record: Record) -> None:
        if self.predicate(record):
            self.hits += 1

    def estimate(self, level: float = 0.95) -> Estimate:
        if self.k == 0:
            raise EstimatorError("no samples absorbed yet")
        interval = proportion_interval(self.hits, self.k, level,
                                       q=self.fpc_population)
        p = self.hits / self.k
        return Estimate(value=p,
                        std_error=math.sqrt(max(p * (1 - p), 0.0) / self.k),
                        interval=interval, k=self.k,
                        q=self.population_size, exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self.hits = 0


class VarianceEstimator(OnlineEstimator):
    """Population variance of an attribute (unbiased sample variance).

    The interval uses the chi-square pivot under approximate normality —
    wide but informative; ``std=True`` reports the standard deviation
    (square-rooted endpoints).
    """

    def __init__(self, attribute: AttributeAccessor, std: bool = False):
        super().__init__()
        self.attribute = attribute
        self.report_std = std
        self.stats = RunningStats()

    def update(self, record: Record) -> None:
        self.stats.add(self.attribute(record))

    def estimate(self, level: float = 0.95) -> Estimate:
        if self.k < 2:
            raise EstimatorError("variance needs at least two samples")
        s2 = self.stats.variance
        df = self.k - 1
        alpha = 1.0 - level
        chi2 = _scipy_stats().chi2
        lo = df * s2 / float(chi2.ppf(1 - alpha / 2, df))
        hi = df * s2 / float(chi2.ppf(alpha / 2, df))
        value = s2
        if self.report_std:
            value = math.sqrt(s2)
            lo, hi = math.sqrt(lo), math.sqrt(hi)
        interval = ConfidenceInterval(lo, hi, level)
        return Estimate(value=value, std_error=None, interval=interval,
                        k=self.k, q=self.population_size,
                        exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self.stats = RunningStats()


class QuantileEstimator(OnlineEstimator):
    """Sample quantile with a distribution-free order-statistic interval.

    Keeps the samples sorted (bisect insertion); the interval picks order
    statistics whose binomial coverage reaches the requested level.
    """

    def __init__(self, attribute: AttributeAccessor, quantile: float = 0.5):
        super().__init__()
        if not 0.0 < quantile < 1.0:
            raise EstimatorError("quantile must be in (0, 1)")
        self.attribute = attribute
        self.quantile = quantile
        self.values: list[float] = []

    def update(self, record: Record) -> None:
        bisect.insort(self.values, self.attribute(record))

    def estimate(self, level: float = 0.95) -> Estimate:
        k = len(self.values)
        if k == 0:
            raise EstimatorError("no samples absorbed yet")
        idx = min(k - 1, max(0, math.ceil(self.quantile * k) - 1))
        value = self.values[idx]
        # Binomial bracket: indices [l, u) covering the quantile w.p. level.
        binom = _scipy_stats().binom
        lo_idx = int(binom.ppf((1 - level) / 2, k, self.quantile))
        hi_idx = int(binom.ppf((1 + level) / 2, k, self.quantile))
        lo_idx = max(0, min(lo_idx, k - 1))
        hi_idx = max(0, min(hi_idx, k - 1))
        interval = ConfidenceInterval(self.values[lo_idx],
                                      self.values[hi_idx], level)
        return Estimate(value=value, std_error=None, interval=interval,
                        k=k, q=self.population_size, exact=self.is_exact)

    def reset(self) -> None:
        super().reset()
        self.values = []
