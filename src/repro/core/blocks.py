"""Packed columnar record blocks: the engine's batch data layout.

Per-record Python objects dominate the sampling profile once selection
is cached: boxed floats, dict-backed :class:`~repro.core.records.Record`
construction and one-at-a-time rect tests cost more than the draws
themselves.  This module packs batches of records into contiguous typed
arrays instead —

::

    ColumnBlock                       RecordBlock
    ┌──────────────────────┐          ┌──────────────────────────┐
    │ ids   : array('q')   │          │ ids   : array('q')       │
    │ col 0 : array('d')   │  lon     │ lon   : array('d')       │
    │ col 1 : array('d')   │  lat     │ lat   : array('d')       │
    │ [col 2: array('d')]  │  t       │ t     : array('d')       │
    └──────────────────────┘          │ attrs : lazy side-table  │
    index leaves, wire format         └──────────────────────────┘
                                      storage payloads (LSM runs)

— so rect/time containment filters run as one pass over the arrays
(vectorised under numpy, a tight zip loop otherwise) and estimators can
absorb whole columns without materialising ``Record`` objects at all.

The same layout doubles as a wire/storage format (:data:`BLOCK_MAGIC`
header, little-endian, attrs as a trailing JSON side-table that decodes
lazily), used by the LSM sealed-run files so simulated DFS I/O carries
5-10x more points per byte than the JSON document encoding.

**Dual path contract** (mirrors the Hilbert batch codec): every filter
has a numpy fast path and a stdlib fallback producing identical results;
``STORM_BLOCKS_BACKEND=stdlib`` forces the fallback (the CI leg without
numpy installed exercises it for real).
"""

from __future__ import annotations

import json
import os
import struct
import sys
from array import array
from typing import Iterable, Iterator, Sequence

from repro.core.records import Record
from repro.errors import StorageError

__all__ = ["BLOCK_MAGIC", "ColumnBlock", "RecordBlock", "backend_name",
           "numpy_or_none", "is_block_payload"]

#: Wire-format header of every encoded block ("STorm Block v1").
BLOCK_MAGIC = b"STB1"

_HEADER = struct.Struct("<4sBxxxqII")  # magic, dims, n, meta_len, attrs_len

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None
if os.environ.get("STORM_BLOCKS_BACKEND", "").strip().lower() == "stdlib":
    _numpy = None


def numpy_or_none():
    """The numpy module when the fast path is active, else ``None``.

    Read at call time (not import time) so tests can disable the fast
    path by monkeypatching ``repro.core.blocks._numpy``.
    """
    return _numpy


def backend_name() -> str:
    """Which filter/codec path is active: ``"numpy"`` or ``"stdlib"``."""
    return "stdlib" if _numpy is None else "numpy"


def _to_le(arr: array) -> bytes:
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _from_le(typecode: str, data: bytes) -> array:
    arr = array(typecode)
    arr.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover
        arr.byteswap()
    return arr


def encode_block(ids: array, cols: Sequence[array],
                 meta: dict | None = None, attrs: bytes = b"") -> bytes:
    """Serialise id + coordinate columns (and side-tables) to bytes."""
    n = len(ids)
    for col in cols:
        if len(col) != n:
            raise StorageError(
                f"ragged block: {len(col)} values for {n} ids")
    meta_bytes = b"" if not meta else json.dumps(
        meta, sort_keys=True, separators=(",", ":")).encode()
    parts = [_HEADER.pack(BLOCK_MAGIC, len(cols), n, len(meta_bytes),
                          len(attrs)), meta_bytes, _to_le(ids)]
    parts.extend(_to_le(col) for col in cols)
    parts.append(attrs)
    return b"".join(parts)


def decode_block(data: bytes
                 ) -> tuple[array, list[array], dict, bytes]:
    """Inverse of :func:`encode_block`: (ids, cols, meta, attrs bytes)."""
    if len(data) < _HEADER.size or data[:4] != BLOCK_MAGIC:
        raise StorageError("not a columnar block payload (bad magic)")
    magic, dims, n, meta_len, attrs_len = _HEADER.unpack_from(data)
    if n < 0:
        raise StorageError(f"corrupt block header: n={n}")
    view = memoryview(data)
    off = _HEADER.size
    expected = off + meta_len + 8 * n * (dims + 1) + attrs_len
    if len(data) != expected:
        raise StorageError(
            f"truncated block payload: {len(data)} bytes, "
            f"header promises {expected}")
    meta = json.loads(bytes(view[off:off + meta_len])) if meta_len else {}
    off += meta_len
    ids = _from_le("q", bytes(view[off:off + 8 * n]))
    off += 8 * n
    cols = []
    for _ in range(dims):
        cols.append(_from_le("d", bytes(view[off:off + 8 * n])))
        off += 8 * n
    attrs = bytes(view[off:off + attrs_len])
    return ids, cols, meta, attrs


def is_block_payload(data: bytes) -> bool:
    """Whether bytes start with the columnar block magic header."""
    return data[:4] == BLOCK_MAGIC


class ColumnBlock:
    """Immutable packed columns for one batch of indexed points.

    ``ids`` is an ``array('q')`` of item ids; ``cols`` holds one
    ``array('d')`` per dimension (lon, lat[, t]) in index-key order.
    Index leaves keep one of these as their scan-side layout, so rect
    containment runs over contiguous machine floats instead of per-Entry
    tuple comparisons.
    """

    __slots__ = ("ids", "cols", "_views")

    def __init__(self, ids: array, cols: Sequence[array]):
        self.ids = ids
        self.cols = tuple(cols)
        self._views = None  # lazy numpy views over the same buffers
        for col in self.cols:
            if len(col) != len(ids):
                raise StorageError(
                    f"ragged block: {len(col)} values for {len(ids)} ids")

    @classmethod
    def from_points(cls, items: Iterable[tuple[int, Sequence[float]]],
                    dims: int) -> "ColumnBlock":
        """Pack ``(item_id, point)`` pairs into columns."""
        ids = array("q")
        cols = [array("d") for _ in range(dims)]
        for item_id, point in items:
            ids.append(item_id)
            for d in range(dims):
                cols[d].append(point[d])
        return cls(ids, cols)

    @classmethod
    def from_entries(cls, entries: Sequence, dims: int) -> "ColumnBlock":
        """Pack index entries (``.item_id`` / ``.point``) into columns."""
        ids = array("q", [e.item_id for e in entries])
        cols = [array("d", [e.point[d] for e in entries])
                for d in range(dims)]
        return cls(ids, cols)

    @property
    def dims(self) -> int:
        return len(self.cols)

    def __len__(self) -> int:
        return len(self.ids)

    def point(self, i: int) -> tuple[float, ...]:
        """The i-th point as a key tuple."""
        return tuple(col[i] for col in self.cols)

    def _np_views(self):
        if self._views is None:
            np = _numpy
            self._views = tuple(np.frombuffer(col, dtype=np.float64)
                                for col in self.cols)
        return self._views

    def indices_in(self, lo: Sequence[float], hi: Sequence[float]
                   ) -> list[int]:
        """Positions of points inside the closed box ``[lo, hi]``.

        One vectorised pass under numpy; a tight zip loop otherwise.
        Both paths return the same positions in ascending order.
        """
        if _numpy is not None and len(self.ids):
            np = _numpy
            views = self._np_views()
            mask = (views[0] >= lo[0]) & (views[0] <= hi[0])
            for d in range(1, len(views)):
                mask &= (views[d] >= lo[d]) & (views[d] <= hi[d])
            return np.nonzero(mask)[0].tolist()
        if self.dims == 2:
            xlo, ylo = lo[0], lo[1]
            xhi, yhi = hi[0], hi[1]
            return [i for i, (x, y) in enumerate(zip(*self.cols))
                    if xlo <= x <= xhi and ylo <= y <= yhi]
        if self.dims == 3:
            xlo, ylo, tlo = lo[0], lo[1], lo[2]
            xhi, yhi, thi = hi[0], hi[1], hi[2]
            return [i for i, (x, y, t) in enumerate(zip(*self.cols))
                    if xlo <= x <= xhi and ylo <= y <= yhi
                    and tlo <= t <= thi]
        cols = self.cols
        return [i for i in range(len(self.ids))
                if all(l <= col[i] <= h
                       for col, l, h in zip(cols, lo, hi))]

    def count_in(self, lo: Sequence[float], hi: Sequence[float]) -> int:
        """Number of points inside the closed box ``[lo, hi]``."""
        if _numpy is not None and len(self.ids):
            np = _numpy
            views = self._np_views()
            mask = (views[0] >= lo[0]) & (views[0] <= hi[0])
            for d in range(1, len(views)):
                mask &= (views[d] >= lo[d]) & (views[d] <= hi[d])
            return int(np.count_nonzero(mask))
        return len(self.indices_in(lo, hi))

    def encode(self, meta: dict | None = None) -> bytes:
        """Wire-format bytes (:data:`BLOCK_MAGIC` header)."""
        return encode_block(self.ids, self.cols, meta=meta)

    @classmethod
    def decode(cls, data: bytes) -> "tuple[ColumnBlock, dict]":
        """Inverse of :meth:`encode`: (block, meta)."""
        ids, cols, meta, _ = decode_block(data)
        return cls(ids, cols), meta

    def __repr__(self) -> str:
        return f"<ColumnBlock n={len(self.ids)} dims={self.dims}>"


class RecordBlock:
    """Columnar batch of full records with a lazy attrs side-table.

    The storage-facing sibling of :class:`ColumnBlock`: always three
    coordinate columns (lon, lat, t) plus the free-form attribute
    mappings serialised as one trailing JSON list.  **Lazy-attrs
    contract**: decoding a payload never parses the side-table; the
    JSON bytes are parsed on the first :meth:`attrs`/:meth:`record`
    call, so scan paths that only touch ids/coordinates pay nothing
    for attribute-heavy datasets.
    """

    __slots__ = ("ids", "lons", "lats", "ts", "_attrs", "_attrs_raw")

    def __init__(self, ids: array, lons: array, lats: array, ts: array,
                 attrs: "list[dict] | None" = None,
                 attrs_raw: bytes | None = None):
        n = len(ids)
        if not (len(lons) == len(lats) == len(ts) == n):
            raise StorageError("ragged record block columns")
        if attrs is not None and len(attrs) != n:
            raise StorageError(
                f"attrs side-table has {len(attrs)} rows for {n} records")
        self.ids = ids
        self.lons = lons
        self.lats = lats
        self.ts = ts
        self._attrs = attrs
        self._attrs_raw = attrs_raw

    @classmethod
    def from_records(cls, records: Iterable[Record]) -> "RecordBlock":
        records = list(records)
        ids = array("q", [r.record_id for r in records])
        lons = array("d", [r.lon for r in records])
        lats = array("d", [r.lat for r in records])
        ts = array("d", [r.t for r in records])
        attrs = [dict(r.attrs) for r in records]
        if not any(attrs):
            attrs = None  # all-empty side-table encodes to nothing
        return cls(ids, lons, lats, ts, attrs=attrs)

    def __len__(self) -> int:
        return len(self.ids)

    def _attr_table(self) -> "list[dict] | None":
        if self._attrs is None and self._attrs_raw:
            self._attrs = json.loads(self._attrs_raw)
            self._attrs_raw = None
        return self._attrs

    def attrs(self, i: int) -> dict:
        """Attribute mapping of record ``i`` (parses the side-table
        on first use)."""
        table = self._attr_table()
        return {} if table is None else table[i]

    def record(self, i: int) -> Record:
        """Materialise record ``i`` as a full :class:`Record`."""
        return Record(record_id=self.ids[i], lon=self.lons[i],
                      lat=self.lats[i], t=self.ts[i], attrs=self.attrs(i))

    def records(self) -> Iterator[Record]:
        """Materialise every record (the estimator-boundary fallback)."""
        for i in range(len(self.ids)):
            yield self.record(i)

    def encode(self, meta: dict | None = None) -> bytes:
        """Wire/storage bytes: header, columns, JSON attrs side-table."""
        table = self._attr_table()
        attrs = b"" if table is None else json.dumps(
            table, sort_keys=True, separators=(",", ":")).encode()
        return encode_block(self.ids, (self.lons, self.lats, self.ts),
                            meta=meta, attrs=attrs)

    @classmethod
    def decode(cls, data: bytes) -> "tuple[RecordBlock, dict]":
        """Inverse of :meth:`encode` — attrs stay raw until first use."""
        ids, cols, meta, attrs_raw = decode_block(data)
        if len(cols) != 3:
            raise StorageError(
                f"record block payload needs 3 columns, found {len(cols)}")
        return cls(ids, cols[0], cols[1], cols[2],
                   attrs_raw=attrs_raw or None), meta

    def __repr__(self) -> str:
        return f"<RecordBlock n={len(self.ids)}>"
