"""Core STORM contribution: spatial online sampling and online analytics.

The subpackages are:

``repro.core.geometry``
    d-dimensional boxes and point predicates shared by every index.
``repro.core.records``
    The record model (location, timestamp, attributes) and spatio-temporal
    query ranges.
``repro.core.sampling``
    The spatial online samplers — the baselines (QueryFirst, SampleFirst,
    RandomPath) and the paper's two index-based samplers (LS-tree, RS-tree).
``repro.core.estimators``
    The feature module: online estimators with confidence intervals built on
    top of the sample stream.
``repro.core.session`` / ``repro.core.engine``
    The query/analytics evaluator: progressive query sessions and the
    user-facing engine.
``repro.core.optimizer``
    Cost-based selection of a sampling method per query.
"""

from repro.core.geometry import Rect
from repro.core.records import Record, STRange

__all__ = ["Rect", "Record", "STRange"]
