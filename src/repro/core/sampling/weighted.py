"""O(1)/O(log n) weighted source selection for the sampling hot loops.

Every sampler in this package repeatedly answers the same question: *given
sources with weights w_0..w_{n-1}, pick source i with probability
w_i / Σw*.  The naive answer — draw ``randrange(total)`` and scan the
cumulative sums — is O(n) per draw and shows up directly in sampler
throughput once canonical sets or clusters have many sources.  This
module provides the two classic constant/logarithmic structures:

:class:`AliasTable`
    Walker's alias method for *static* weights: O(n) build, O(1) per
    draw (one ``randrange`` + one ``random`` + two table lookups).  The
    with-replacement paths use it — weights never change between draws.

:class:`FenwickSampler`
    A Fenwick (binary indexed) tree over *decrementing* integer
    weights: O(n) build, O(log n) per draw and per update.  The
    without-replacement paths use it — each emitted sample decrements
    its source's remaining count, and the next draw must see the new
    distribution exactly.  Unlike acceptance/rejection selection it
    never wastes a coin flip and never works from a stale maximum.

Both structures draw with ``rng.randrange`` over integer totals where
possible, so their outputs are exactly (not approximately) the discrete
distribution the weights describe — the chi-square uniformity tests in
``tests/test_weighted.py`` hold them to that.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import StormError

__all__ = ["AliasTable", "FenwickSampler"]


class AliasTable:
    """Walker/Vose alias table: O(1) draws from a fixed distribution.

    Weights may be any non-negative numbers with a positive sum.
    Zero-weight sources are never drawn.
    """

    __slots__ = ("_n", "_prob", "_alias")

    def __init__(self, weights: Sequence[float]):
        n = len(weights)
        if n == 0:
            raise StormError("alias table needs at least one weight")
        total = 0.0
        for w in weights:
            if w < 0:
                raise StormError(f"negative weight {w}")
            total += w
        if total <= 0:
            raise StormError("alias table needs a positive total weight")
        self._n = n
        # Vose's stable partition into small/large columns.
        scaled = [w * n / total for w in weights]
        prob = [0.0] * n
        alias = list(range(n))
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] -= 1.0 - scaled[s]
            (small if scaled[l] < 1.0 else large).append(l)
        # Leftovers are 1.0 up to float error.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0
        self._prob = prob
        self._alias = alias

    def __len__(self) -> int:
        return self._n

    def sample(self, rng: random.Random) -> int:
        """One draw: index i with probability w_i / Σw."""
        i = rng.randrange(self._n)
        if rng.random() < self._prob[i]:
            return i
        return self._alias[i]


class FenwickSampler:
    """Fenwick tree over non-negative integer weights with O(log n) draws.

    Supports the decrement-heavy access pattern of without-replacement
    sampling: ``sample`` picks index i with probability w_i / total,
    and ``add(i, -1)`` retires one unit of that source's weight before
    the next draw.
    """

    __slots__ = ("_n", "_tree", "_weights", "total")

    def __init__(self, weights: Sequence[int]):
        n = len(weights)
        self._n = n
        self._weights = [int(w) for w in weights]
        self.total = 0
        tree = [0] * (n + 1)
        # O(n) build: place each weight, then push partial sums up.
        for i, w in enumerate(self._weights):
            if w < 0:
                raise StormError(f"negative weight {w}")
            self.total += w
            tree[i + 1] += w
            parent = (i + 1) + ((i + 1) & -(i + 1))
            if parent <= n:
                tree[parent] += tree[i + 1]
        self._tree = tree

    def __len__(self) -> int:
        return self._n

    def get(self, i: int) -> int:
        """Current weight of source i."""
        return self._weights[i]

    def add(self, i: int, delta: int) -> None:
        """Adjust source i's weight by delta (result must stay >= 0)."""
        if self._weights[i] + delta < 0:
            raise StormError(
                f"weight of source {i} would go negative")
        self._weights[i] += delta
        self.total += delta
        j = i + 1
        while j <= self._n:
            self._tree[j] += delta
            j += j & -j

    def find(self, target: int) -> int:
        """Smallest index i with prefix_sum(0..i) > target.

        ``target`` must lie in ``[0, total)``; zero-weight sources are
        skipped by construction.
        """
        idx = 0
        bit = 1 << (self._n.bit_length())
        while bit:
            nxt = idx + bit
            if nxt <= self._n and self._tree[nxt] <= target:
                idx = nxt
                target -= self._tree[nxt]
            bit >>= 1
        return idx

    def sample(self, rng: random.Random) -> int:
        """One draw: index i with probability w_i / total (total > 0)."""
        if self.total <= 0:
            raise StormError("cannot sample from an empty distribution")
        return self.find(rng.randrange(self.total))
