"""RS-tree: a single Hilbert R-tree with per-node sample buffers.

The paper's second index (Section 3.1) folds three ideas into one R-tree:

**Sample buffering** — every node ``u`` stores ``S(u)``, a pre-shuffled
without-replacement sample of the points below it.  Reading the node block
therefore already yields random samples of its whole subtree; queries whose
canonical set covers a node never descend into it.

**Lazy exploration** — a query only materialises the canonical set ``R_Q``
(maximal fully-contained nodes plus residual points from partial leaves),
using per-node counts; subtrees below canonical nodes are not explored
until their buffers run dry.

**Weighted source selection** — picking the next source node with
probability proportional to its remaining count is done by a Fenwick
tree over the remaining counts (the paper describes A/R selection; the
Fenwick draw is O(log |R_Q|) worst case, never wastes a coin flip, and
stays exact as counts decrement), so large subtrees — the ones most
likely to supply the next sample — are located without scanning all of
``R_Q`` per sample.  With-replacement streams use a Walker alias table
over the static counts instead: O(1) per draw.

Buffer maintenance is hierarchical: a leaf's buffer is a shuffle of its
entries; an internal node's buffer is drawn by consuming its children's
buffers with remaining-count-proportional interleaving (children are
disjoint, so the merged batch is a uniform without-replacement sample of
the subtree).  Exhausted buffers refill in place with fresh randomness;
updates invalidate buffers along the affected root-to-leaf path and the
next query refills them lazily.

Statistical note: within one query the emitted stream is uniform without
replacement (enforced by rejection against the emitted set, with an
enumeration fallback once a subtree is mostly consumed).  Across *queries*
samples are only fresh, not independent of past queries, exactly like the
paper's system (inter-query independence is the open problem of Hu et al.
cited there).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.permutation import (sample_without_replacement,
                                             streaming_shuffle)
from repro.core.sampling.weighted import AliasTable, FenwickSampler
from repro.index.cost import CostCounter
from repro.index.rtree import Entry, Node, RTree, _iter_subtree_entries

__all__ = ["RSTreeSampler"]

# After this many consecutive duplicate rejections from one subtree the
# sampler enumerates the subtree's remainder instead of rejecting forever.
_REJECT_STREAK_LIMIT = 16


class RSTreeSampler(SpatialSampler):
    """Online sampler over a (Hilbert) R-tree with node sample buffers.

    Parameters
    ----------
    tree:
        The backing R-tree.  A :class:`~repro.index.hilbert_rtree.HilbertRTree`
        matches the paper; any :class:`~repro.index.rtree.RTree` works.
    buffer_size:
        ``s = |S(u)|`` per node.  The paper sets this to roughly one block's
        worth; the ablation benchmark sweeps it.
    rng:
        Randomness used for buffer refills (distinct from the per-query
        rng so repeated queries see fresh buffers deterministically under a
        fixed seed).
    enumerate_threshold:
        Fraction of a subtree that may be emitted before the sampler stops
        rejection-sampling that subtree and enumerates the rest.
    """

    name = "rs-tree"

    def __init__(self, tree: RTree, buffer_size: int = 64,
                 rng: random.Random | None = None,
                 enumerate_threshold: float = 0.5):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if not 0.0 < enumerate_threshold <= 1.0:
            raise ValueError("enumerate_threshold must be in (0, 1]")
        self.tree = tree
        self.buffer_size = buffer_size
        self.rng = rng if rng is not None else random.Random()
        self.enumerate_threshold = enumerate_threshold

    # ------------------------------------------------------------------
    # buffer maintenance
    # ------------------------------------------------------------------

    def prepare(self, cost: CostCounter | None = None) -> None:
        """(Re)fill every node buffer (index build step; cost optional).

        Always refills, even nodes that already hold a buffer — another
        sampler (possibly with a different ``buffer_size``) may have
        attached buffers to the same tree.
        """
        if self.tree.root is None:
            return
        sink = cost if cost is not None else CostCounter()
        self._fill_post_order(self.tree.root, sink)

    def _fill_post_order(self, node: Node, cost: CostCounter) -> None:
        if not node.is_leaf:
            for child in node.children or []:
                self._fill_post_order(child, cost)
        self._fill_buffer(node, cost)

    def _ensure_buffer(self, node: Node, cost: CostCounter) -> None:
        if node.sample_buffer is None \
                or node.buffer_pos >= len(node.sample_buffer):
            self._fill_buffer(node, cost)

    def _fill_buffer(self, node: Node, cost: CostCounter) -> None:
        """(Re)draw ``S(node)`` with fresh randomness."""
        s = min(self.buffer_size, node.count)
        if node.is_leaf:
            cost.charge_node(node.node_id)
            cost.charge_entries(node.members())
            node.sample_buffer = sample_without_replacement(
                node.entries or [], s, self.rng)
        elif node.count <= self.buffer_size:
            # Small subtree: the buffer is a full shuffled enumeration.
            entries = list(_iter_subtree_entries(node))
            cost.charge_entries(len(entries))
            node.sample_buffer = sample_without_replacement(
                entries, len(entries), self.rng)
        else:
            node.sample_buffer = self._merge_from_children(node, s, cost)
        node.buffer_pos = 0

    def _merge_from_children(self, node: Node, s: int, cost: CostCounter
                             ) -> list[Entry]:
        """Draw s items from the subtree by interleaving child buffers.

        A refill gathers the distinct child blocks it needs and reads
        them in layout order — one sweep per batch, so the charged I/O is
        (mostly sequential) per *block*, not per sample.
        """
        children = node.children or []
        fen = FenwickSampler([c.count for c in children])
        batch: list[Entry] = []
        seen: set[int] = set()
        touched: set[int] = set()
        attempts = 0
        max_attempts = 4 * s + 16
        while len(batch) < s and fen.total > 0 \
                and attempts < max_attempts:
            attempts += 1
            idx = fen.sample(self.rng)
            child = children[idx]
            touched.add(child.node_id)
            entry = self._draw_from_subtree(child, cost)
            fen.add(idx, -1)
            if entry.item_id in seen:
                # A child's buffer wrapped mid-batch; skip the duplicate.
                cost.charge_rejection()
                continue
            seen.add(entry.item_id)
            batch.append(entry)
        if len(batch) < s:
            # Duplicate-heavy merge (or exhausted remaining-count
            # arithmetic): finish the batch from the not-yet-drawn
            # remainder of the subtree instead of silently returning
            # fewer than s entries.  A shuffled scan of the unseen
            # entries continues the uniform without-replacement draw
            # exactly.
            pool = [e for e in _iter_subtree_entries(node)
                    if e.item_id not in seen]
            self._charge_subtree_scan(node, cost)
            cost.charge_entries(node.count)
            for entry in streaming_shuffle(pool, self.rng):
                batch.append(entry)
                if len(batch) >= s:
                    break
        for node_id in sorted(touched):
            cost.charge_node(node_id)
        return batch

    def _charge_subtree_scan(self, node: Node, cost: CostCounter) -> None:
        """Charge a full layout-order sweep of a subtree's blocks."""
        ids = []
        stack = [node]
        while stack:
            n = stack.pop()
            ids.append(n.node_id)
            if not n.is_leaf:
                stack.extend(n.children or [])
        for node_id in sorted(ids):
            cost.charge_node(node_id)

    def _draw_from_subtree(self, node: Node, cost: CostCounter) -> Entry:
        """Next buffered sample of the subtree (refilling as needed)."""
        self._ensure_buffer(node, cost)
        if not node.sample_buffer:
            # Pathological refill (merge produced only duplicates): fall
            # back to a full shuffled enumeration of the subtree.
            entries = list(_iter_subtree_entries(node))
            self._charge_subtree_scan(node, cost)
            cost.charge_entries(len(entries))
            node.sample_buffer = sample_without_replacement(
                entries, len(entries), self.rng)
            node.buffer_pos = 0
        entry = node.sample_buffer[node.buffer_pos]
        node.buffer_pos += 1
        return entry

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None) -> Iterator[Entry]:
        # A generator, so the canonical set materialises lazily at the
        # first draw — its exploration cost lands inside the consumer's
        # "sample_stream" trace span, not at open time.
        cost = cost if cost is not None else self.tree.cost
        yield from self.sample_stream_from_canon(
            self.tree.canonical_set(query, cost), rng, cost)

    def sample_stream_from_canon(self, canon, rng: random.Random,
                                 cost: CostCounter | None = None
                                 ) -> Iterator[Entry]:
        """Stream from an already-materialised canonical set.

        Snapshot consumers (the LSM tiered sampler) pin the canonical
        set they opened with and keep drawing from it even after the
        main tree is atomically swapped by a compaction — the old node
        graph stays alive and immutable, so the pinned stream remains
        exactly uniform over the snapshot's population.
        """
        cost = cost if cost is not None else self.tree.cost
        nodes = canon.nodes
        residual_iter = streaming_shuffle(canon.residual, rng)
        # Source 0..len(nodes)-1 are canonical nodes; the last source is
        # the residual pool from partially overlapping leaves.  A
        # Fenwick tree over the remaining counts selects the next
        # source with probability remaining/total in O(log #sources) —
        # exact at every step, with none of the wasted coin flips (or
        # the stale-maximum drift) of acceptance/rejection selection.
        remaining = [n.count for n in nodes] + [len(canon.residual)]
        counts = list(remaining)
        fen = FenwickSampler(remaining)
        emitted: set[int] = set()
        enum_pools: dict[int, Iterator[Entry]] = {}
        n_sources = len(remaining)
        while fen.total > 0:
            i = fen.sample(rng)
            # --- draw one entry from the chosen source ------------------
            if i == n_sources - 1:
                entry = next(residual_iter)
            elif i in enum_pools:
                entry = next(enum_pools[i])
            else:
                entry = self._draw_checked(nodes[i], i, counts, remaining,
                                           emitted, enum_pools, rng, cost)
                if entry is None:
                    continue
            emitted.add(entry.item_id)
            remaining[i] -= 1
            fen.add(i, -1)
            cost.charge_sample()
            yield entry

    def _draw_checked(self, node: Node, i: int, counts: list[int],
                      remaining: list[int], emitted: set[int],
                      enum_pools: dict[int, Iterator[Entry]],
                      rng: random.Random, cost: CostCounter
                      ) -> Entry | None:
        """Draw from a canonical node, skipping already-emitted points.

        Returns ``None`` when the caller should re-select a source (the
        node was switched to enumeration mode mid-draw).
        """
        streak = 0
        while True:
            consumed_fraction = 1.0 - remaining[i] / counts[i]
            if consumed_fraction > self.enumerate_threshold \
                    or streak >= _REJECT_STREAK_LIMIT:
                pool = [e for e in _iter_subtree_entries(node)
                        if e.item_id not in emitted]
                self._charge_subtree_scan(node, cost)
                cost.charge_entries(counts[i])
                enum_pools[i] = streaming_shuffle(pool, rng)
                return next(enum_pools[i])
            entry = self._draw_from_subtree(node, cost)
            if entry.item_id not in emitted:
                return entry
            cost.charge_rejection()
            streak += 1

    def sample_stream_with_replacement(
            self, query: Rect, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        """With-replacement draws: pick a canonical source ∝ its *full*
        count each time and consume its (cycling) buffer.

        Draws from one buffer batch are without replacement internally,
        so very short gaps between repeats are slightly under-
        represented; across batches the stream is uniform.  (The exact
        construction would re-shuffle per draw — the buffered
        approximation is the one the node-resident sample store makes
        possible.)
        """
        cost = cost if cost is not None else self.tree.cost
        yield from self.sample_stream_with_replacement_from_canon(
            self.tree.canonical_set(query, cost), rng, cost)

    def sample_stream_with_replacement_from_canon(
            self, canon, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        """With-replacement draws from a pinned canonical set."""
        cost = cost if cost is not None else self.tree.cost
        residual = list(canon.residual)
        weights = [n.count for n in canon.nodes] + [len(residual)]
        if sum(weights) == 0:
            return
        # Weights are static for the whole stream, so a Walker alias
        # table gives O(1) source selection per draw.
        alias = AliasTable(weights)
        while True:
            idx = alias.sample(rng)
            if idx == len(canon.nodes):
                entry = residual[rng.randrange(len(residual))]
            else:
                entry = self._draw_from_subtree(canon.nodes[idx], cost)
            cost.charge_sample()
            yield entry

    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        return self.tree.range_count(
            query, cost if cost is not None else self.tree.cost)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def buffered_nodes(self) -> int:
        """Number of nodes currently holding a valid buffer."""
        if self.tree.root is None:
            return 0
        total = 0
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if node.sample_buffer is not None:
                total += 1
            if not node.is_leaf:
                stack.extend(node.children or [])
        return total
