"""RS-tree: a single Hilbert R-tree with per-node sample buffers.

The paper's second index (Section 3.1) folds three ideas into one R-tree:

**Sample buffering** — every node ``u`` stores ``S(u)``, a pre-shuffled
without-replacement sample of the points below it.  Reading the node block
therefore already yields random samples of its whole subtree; queries whose
canonical set covers a node never descend into it.

**Lazy exploration** — a query only materialises the canonical set ``R_Q``
(maximal fully-contained nodes plus residual points from partial leaves),
using per-node counts; subtrees below canonical nodes are not explored
until their buffers run dry.

**Weighted source selection** — picking the next source node with
probability proportional to its remaining count is done by a Fenwick
tree over the remaining counts (the paper describes A/R selection; the
Fenwick draw is O(log |R_Q|) worst case, never wastes a coin flip, and
stays exact as counts decrement), so large subtrees — the ones most
likely to supply the next sample — are located without scanning all of
``R_Q`` per sample.  With-replacement streams use a Walker alias table
over the static counts instead: O(1) per draw.

Buffer maintenance is hierarchical: a leaf's buffer is a shuffle of its
entries; an internal node's buffer is drawn by consuming its children's
buffers with remaining-count-proportional interleaving (children are
disjoint, so the merged batch is a uniform without-replacement sample of
the subtree).  Exhausted buffers refill in place with fresh randomness;
updates invalidate buffers along the affected root-to-leaf path and the
next query refills them lazily.

Statistical note: within one query the emitted stream is uniform without
replacement (enforced by rejection against the emitted set, with an
enumeration fallback once a subtree is mostly consumed).  Across *queries*
samples are only fresh, not independent of past queries, exactly like the
paper's system (inter-query independence is the open problem of Hu et al.
cited there).
"""

from __future__ import annotations

import random
from itertools import islice
from typing import Iterator

from repro.core.blocks import numpy_or_none
from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.permutation import (sample_without_replacement,
                                             streaming_shuffle)
from repro.core.sampling.weighted import AliasTable, FenwickSampler
from repro.index.cost import CostCounter
from repro.index.rtree import Entry, Node, RTree, _iter_subtree_entries

__all__ = ["RSTreeSampler"]

# After this many consecutive duplicate rejections from one subtree the
# sampler enumerates the subtree's remainder instead of rejecting forever.
_REJECT_STREAK_LIMIT = 16

#: Internal-node refills on the vectorised path draw this many times
#: ``buffer_size`` per merge: the per-refill fixed cost (one MVHG draw,
#: one permutation) amortises over a longer uniform-WOR prefix.
_REFILL_AMPLIFY = 16


class RSTreeSampler(SpatialSampler):
    """Online sampler over a (Hilbert) R-tree with node sample buffers.

    Parameters
    ----------
    tree:
        The backing R-tree.  A :class:`~repro.index.hilbert_rtree.HilbertRTree`
        matches the paper; any :class:`~repro.index.rtree.RTree` works.
    buffer_size:
        ``s = |S(u)|`` per node.  The paper sets this to roughly one block's
        worth; the ablation benchmark sweeps it.
    rng:
        Randomness used for buffer refills (distinct from the per-query
        rng so repeated queries see fresh buffers deterministically under a
        fixed seed).
    enumerate_threshold:
        Fraction of a subtree that may be emitted before the sampler stops
        rejection-sampling that subtree and enumerates the rest.
    """

    name = "rs-tree"

    def __init__(self, tree: RTree, buffer_size: int = 64,
                 rng: random.Random | None = None,
                 enumerate_threshold: float = 0.5):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if not 0.0 < enumerate_threshold <= 1.0:
            raise ValueError("enumerate_threshold must be in (0, 1]")
        self.tree = tree
        self.buffer_size = buffer_size
        self.rng = rng if rng is not None else random.Random()
        self.enumerate_threshold = enumerate_threshold
        # Lazily-created numpy Generator for vectorised buffer refills;
        # seeded from `rng` on first use so runs stay deterministic
        # under a fixed seed.
        self._np_rng = None

    def _np_gen(self):
        """The refill numpy Generator, or ``None`` on the stdlib path."""
        np = numpy_or_none()
        if np is None:
            return None
        if self._np_rng is None:
            self._np_rng = np.random.default_rng(self.rng.getrandbits(64))
        return self._np_rng

    def _shuffled(self, entries: list[Entry], s: int) -> list[Entry]:
        """``sample_without_replacement`` with a vectorised fast path.

        One numpy permutation/choice call replaces the per-element
        Fisher-Yates loop — the dominant refill cost once draws are
        batched.  Distributionally identical; only the RNG stream
        differs.
        """
        n = len(entries)
        np_rng = self._np_gen() if n >= 16 else None
        if np_rng is None:
            return sample_without_replacement(entries, s, self.rng)
        if s >= n:
            idx = np_rng.permutation(n)
        else:
            idx = np_rng.choice(n, size=s, replace=False)
        return [entries[j] for j in idx]

    # ------------------------------------------------------------------
    # buffer maintenance
    # ------------------------------------------------------------------

    def prepare(self, cost: CostCounter | None = None) -> None:
        """(Re)fill every node buffer (index build step; cost optional).

        Always refills, even nodes that already hold a buffer — another
        sampler (possibly with a different ``buffer_size``) may have
        attached buffers to the same tree.
        """
        if self.tree.root is None:
            return
        sink = cost if cost is not None else CostCounter()
        self._fill_post_order(self.tree.root, sink)

    def _fill_post_order(self, node: Node, cost: CostCounter) -> None:
        if not node.is_leaf:
            for child in node.children or []:
                self._fill_post_order(child, cost)
        self._fill_buffer(node, cost)

    def _ensure_buffer(self, node: Node, cost: CostCounter) -> None:
        if node.sample_buffer is None \
                or node.buffer_pos >= len(node.sample_buffer):
            self._fill_buffer(node, cost)

    def _fill_buffer(self, node: Node, cost: CostCounter) -> None:
        """(Re)draw ``S(node)`` with fresh randomness."""
        node.fill_epoch += 1
        s = min(self.buffer_size, node.count)
        if node.is_leaf:
            cost.charge_node(node.node_id)
            cost.charge_entries(node.members())
            node.sample_buffer = self._shuffled(node.entries or [], s)
        elif node.count <= self.buffer_size:
            # Small subtree: the buffer is a full shuffled enumeration.
            entries = list(_iter_subtree_entries(node))
            cost.charge_entries(len(entries))
            node.sample_buffer = self._shuffled(entries, len(entries))
        else:
            np_rng = self._np_gen()
            if np_rng is not None:
                # The vectorised merge pays a fixed per-refill cost
                # (one MVHG draw + one permutation) regardless of s, so
                # batch consumers refill larger slices: same uniform
                # WOR law for any prefix, far fewer refills.
                s = min(node.count, _REFILL_AMPLIFY * self.buffer_size)
                if s >= node.count:
                    # The amplified buffer covers the whole subtree: a
                    # full shuffled enumeration needs no child merge,
                    # no dedup, and can never fall short (mirrors the
                    # small-subtree branch above).
                    entries = list(_iter_subtree_entries(node))
                    cost.charge_entries(len(entries))
                    node.sample_buffer = self._shuffled(
                        entries, len(entries))
                else:
                    node.sample_buffer = \
                        self._merge_from_children_batched(
                            node, s, cost, np_rng)
            else:
                node.sample_buffer = self._merge_from_children(
                    node, s, cost)
        node.buffer_pos = 0

    def _merge_from_children(self, node: Node, s: int, cost: CostCounter
                             ) -> list[Entry]:
        """Draw s items from the subtree by interleaving child buffers.

        A refill gathers the distinct child blocks it needs and reads
        them in layout order — one sweep per batch, so the charged I/O is
        (mostly sequential) per *block*, not per sample.

        With numpy the interleave is composed in one step: the joint
        law of per-child draw counts under s WOR draws is multivariate
        hypergeometric over the child counts, so each child's share is
        drawn as one contiguous consumption of its buffer and the
        merged batch is shuffled back into exchangeable order — same
        distribution as the per-draw Fenwick interleave, two orders of
        magnitude fewer RNG calls.
        """
        children = node.children or []
        fen = FenwickSampler([c.count for c in children])
        batch: list[Entry] = []
        seen: set[int] = set()
        touched: set[int] = set()
        attempts = 0
        max_attempts = 4 * s + 16
        while len(batch) < s and fen.total > 0 \
                and attempts < max_attempts:
            attempts += 1
            idx = fen.sample(self.rng)
            child = children[idx]
            touched.add(child.node_id)
            entry = self._draw_from_subtree(child, cost)
            fen.add(idx, -1)
            if entry.item_id in seen:
                # A child's buffer wrapped mid-batch; skip the duplicate.
                cost.charge_rejection()
                continue
            seen.add(entry.item_id)
            batch.append(entry)
        if len(batch) < s:
            # Duplicate-heavy merge (or exhausted remaining-count
            # arithmetic): finish the batch from the not-yet-drawn
            # remainder of the subtree instead of silently returning
            # fewer than s entries.  A shuffled scan of the unseen
            # entries continues the uniform without-replacement draw
            # exactly.
            pool = [e for e in _iter_subtree_entries(node)
                    if e.item_id not in seen]
            self._charge_subtree_scan(node, cost)
            cost.charge_entries(node.count)
            for entry in streaming_shuffle(pool, self.rng):
                batch.append(entry)
                if len(batch) >= s:
                    break
        for node_id in sorted(touched):
            cost.charge_node(node_id)
        return batch

    def _merge_from_children_batched(self, node: Node, s: int,
                                     cost: CostCounter, np_rng
                                     ) -> list[Entry]:
        """Vectorised child-buffer merge (see `_merge_from_children`)."""
        children = node.children or []
        counts = [c.count for c in children]
        take = min(s, sum(counts))
        shares = np_rng.multivariate_hypergeometric(
            counts, take, method="count")
        batch: list[Entry] = []
        seen: set[int] = set()
        touched: set[int] = set()
        for child, share in zip(children, shares):
            if not share:
                continue
            touched.add(child.node_id)
            need = int(share)
            # Redraw duplicates (a child buffer that wrapped mid-batch
            # repeats entries from its previous fill) until the child's
            # full share is fresh — same acceptance law as the
            # single-draw rejection loop.  The retry cap keeps
            # pathological children (tiny pools, heavy reuse) bounded;
            # any leftover lands in the shortfall scan below.
            for _ in range(8):
                fresh = 0
                for entry in self._draw_many_from_subtree(
                        child, need, cost):
                    eid = entry.item_id
                    if eid in seen:
                        cost.charge_rejection()
                        continue
                    seen.add(eid)
                    batch.append(entry)
                    fresh += 1
                need -= fresh
                if need <= 0:
                    break
        # Per-child fills above are grouped; shuffle back to an
        # exchangeable order before any shortfall entries append.
        order = np_rng.permutation(len(batch))
        batch = [batch[j] for j in order]
        if len(batch) < s:
            pool = [e for e in _iter_subtree_entries(node)
                    if e.item_id not in seen]
            self._charge_subtree_scan(node, cost)
            cost.charge_entries(node.count)
            for entry in streaming_shuffle(pool, self.rng):
                batch.append(entry)
                if len(batch) >= s:
                    break
        for node_id in sorted(touched):
            cost.charge_node(node_id)
        return batch

    def _draw_many_from_subtree(self, node: Node, c: int,
                                cost: CostCounter) -> list[Entry]:
        """Next c buffered samples of a subtree as contiguous buffer
        slices (refilling between slices as needed)."""
        out: list[Entry] = []
        while len(out) < c:
            self._ensure_buffer(node, cost)
            buf = node.sample_buffer
            if not buf:
                # Pathological refill: fall back to the single-draw
                # helper, which enumerates the subtree.
                out.append(self._draw_from_subtree(node, cost))
                continue
            take = min(c - len(out), len(buf) - node.buffer_pos)
            out.extend(buf[node.buffer_pos:node.buffer_pos + take])
            node.buffer_pos += take
        return out

    def _charge_subtree_scan(self, node: Node, cost: CostCounter) -> None:
        """Charge a full layout-order sweep of a subtree's blocks."""
        ids = []
        stack = [node]
        while stack:
            n = stack.pop()
            ids.append(n.node_id)
            if not n.is_leaf:
                stack.extend(n.children or [])
        for node_id in sorted(ids):
            cost.charge_node(node_id)

    def _draw_from_subtree(self, node: Node, cost: CostCounter) -> Entry:
        """Next buffered sample of the subtree (refilling as needed)."""
        self._ensure_buffer(node, cost)
        if not node.sample_buffer:
            # Pathological refill (merge produced only duplicates): fall
            # back to a full shuffled enumeration of the subtree.
            entries = list(_iter_subtree_entries(node))
            self._charge_subtree_scan(node, cost)
            cost.charge_entries(len(entries))
            node.fill_epoch += 1
            node.sample_buffer = sample_without_replacement(
                entries, len(entries), self.rng)
            node.buffer_pos = 0
        entry = node.sample_buffer[node.buffer_pos]
        node.buffer_pos += 1
        return entry

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None) -> Iterator[Entry]:
        cost = cost if cost is not None else self.tree.cost
        # The canonical set materialises lazily at the first draw — its
        # exploration cost lands inside the consumer's "sample_stream"
        # trace span, not at open time.
        return _CanonStream(
            self, lambda: self.tree.canonical_set(query, cost), rng, cost)

    def sample_stream_from_canon(self, canon, rng: random.Random,
                                 cost: CostCounter | None = None
                                 ) -> Iterator[Entry]:
        """Stream from an already-materialised canonical set.

        Snapshot consumers (the LSM tiered sampler) pin the canonical
        set they opened with and keep drawing from it even after the
        main tree is atomically swapped by a compaction — the old node
        graph stays alive and immutable, so the pinned stream remains
        exactly uniform over the snapshot's population.
        """
        cost = cost if cost is not None else self.tree.cost
        return _CanonStream(self, canon, rng, cost)

    def _draw_checked(self, node: Node, i: int, counts: list[int],
                      remaining: list[int], emitted: set[int],
                      enum_pools: dict[int, Iterator[Entry]],
                      rng: random.Random, cost: CostCounter
                      ) -> Entry | None:
        """Draw from a canonical node, skipping already-emitted points.

        Returns ``None`` when the caller should re-select a source (the
        node was switched to enumeration mode mid-draw).
        """
        streak = 0
        while True:
            consumed_fraction = 1.0 - remaining[i] / counts[i]
            if consumed_fraction > self.enumerate_threshold \
                    or streak >= _REJECT_STREAK_LIMIT:
                pool = [e for e in _iter_subtree_entries(node)
                        if e.item_id not in emitted]
                self._charge_subtree_scan(node, cost)
                cost.charge_entries(counts[i])
                enum_pools[i] = streaming_shuffle(pool, rng)
                return next(enum_pools[i])
            entry = self._draw_from_subtree(node, cost)
            if entry.item_id not in emitted:
                return entry
            cost.charge_rejection()
            streak += 1

    def sample_stream_with_replacement(
            self, query: Rect, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        """With-replacement draws: pick a canonical source ∝ its *full*
        count each time and consume its (cycling) buffer.

        Draws from one buffer batch are without replacement internally,
        so very short gaps between repeats are slightly under-
        represented; across batches the stream is uniform.  (The exact
        construction would re-shuffle per draw — the buffered
        approximation is the one the node-resident sample store makes
        possible.)
        """
        cost = cost if cost is not None else self.tree.cost
        yield from self.sample_stream_with_replacement_from_canon(
            self.tree.canonical_set(query, cost), rng, cost)

    def sample_stream_with_replacement_from_canon(
            self, canon, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        """With-replacement draws from a pinned canonical set."""
        cost = cost if cost is not None else self.tree.cost
        residual = list(canon.residual)
        weights = [n.count for n in canon.nodes] + [len(residual)]
        if sum(weights) == 0:
            return
        # Weights are static for the whole stream, so a Walker alias
        # table gives O(1) source selection per draw.
        alias = AliasTable(weights)
        while True:
            idx = alias.sample(rng)
            if idx == len(canon.nodes):
                entry = residual[rng.randrange(len(residual))]
            else:
                entry = self._draw_from_subtree(canon.nodes[idx], cost)
            cost.charge_sample()
            yield entry

    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        return self.tree.range_count(
            query, cost if cost is not None else self.tree.cost)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def buffered_nodes(self) -> int:
        """Number of nodes currently holding a valid buffer."""
        if self.tree.root is None:
            return 0
        total = 0
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if node.sample_buffer is not None:
                total += 1
            if not node.is_leaf:
                stack.extend(node.children or [])
        return total


class _CanonStream:
    """One query's without-replacement stream over a canonical set.

    An explicit iterator object (rather than a generator) so batch
    consumers can call :meth:`draw_batch`: a batch of b samples is
    composed by splitting b over the disjoint sources with a
    multivariate hypergeometric draw — the exact distribution of how b
    uniform WOR draws from the union land across disjoint pools — then
    drawing each source's share from its pre-shuffled buffers, and
    finally shuffling the union so the returned sequence is
    exchangeable.  Single draws (``next``) and batches interleave
    freely because both mutate the same (remaining, Fenwick, emitted,
    enum-pool) state.

    Source ``0..len(nodes)-1`` are canonical nodes; the last source is
    the residual pool from partially overlapping leaves.  For single
    draws a Fenwick tree over the remaining counts selects the next
    source with probability remaining/total in O(log #sources) — exact
    at every step, with none of the wasted coin flips (or the
    stale-maximum drift) of acceptance/rejection selection.
    """

    __slots__ = ("_sampler", "_canon", "_rng", "_cost", "_nodes",
                 "_residual_pool", "_residual_pos", "_remaining",
                 "_counts", "_total", "_fen", "_seen", "_pending",
                 "_enum_pools", "_n_sources", "_np_rng", "_src_epoch",
                 "_started")

    def __init__(self, sampler: RSTreeSampler, canon,
                 rng: random.Random, cost: CostCounter):
        self._sampler = sampler
        # Either the canonical set itself or a zero-arg thunk producing
        # it (the lazy `sample_stream` path).
        self._canon = canon
        self._rng = rng
        self._cost = cost
        self._np_rng = None
        self._started = False

    def _start(self) -> None:
        canon = self._canon
        if callable(canon):
            canon = self._canon = canon()
        self._nodes = canon.nodes
        # Residual entries shuffle lazily: `_next_residual` performs
        # one partial Fisher-Yates step (exactly `streaming_shuffle`,
        # with the state held here so batch draws can take vectorised
        # steps over the same pool).
        self._residual_pool = list(canon.residual)
        self._residual_pos = 0
        self._remaining = [n.count for n in self._nodes] \
            + [len(canon.residual)]
        self._counts = list(self._remaining)
        self._total = sum(self._remaining)
        # The Fenwick tree only serves single draws; batch draws track
        # `_total`/`_remaining` directly and invalidate it, and the next
        # `__next__` rebuilds it (O(#sources), rare in batch workloads).
        self._fen = None
        # Seen-id bookkeeping is per *source* (sources are disjoint, so
        # an id can only repeat within the node it came from) and lazy:
        # batch fast paths append whole chunks to `_pending` in O(1)
        # and `_seen_for` materialises the actual id set only when a
        # membership test is needed (buffer wrap, enum switch, single
        # draws).  Residual and enum-pool draws are WOR by construction
        # and need no tracking at all.
        self._seen: dict[int, set[int]] = {}
        self._pending: dict[int, list] = {}
        self._enum_pools: dict[int, Iterator[Entry]] = {}
        # source index -> fill epoch of the node buffer this stream has
        # consumed from, or -1 once it has spanned a refill.  While a
        # source's consumption stays within one fill, its slices are
        # provably duplicate-free (a fill is WOR and positions only
        # move forward), so batch draws skip the per-entry checks.
        self._src_epoch: dict[int, int] = {}
        self._n_sources = len(self._remaining)
        self._started = True

    def __iter__(self) -> _CanonStream:
        return self

    def close(self) -> None:
        """Streams hold no resources; accepted for generator parity."""

    def _next_residual(self) -> Entry:
        """One lazy Fisher-Yates step over the residual pool."""
        pool = self._residual_pool
        i = self._residual_pos
        j = self._rng.randrange(i, len(pool))
        pool[i], pool[j] = pool[j], pool[i]
        self._residual_pos = i + 1
        return pool[i]

    def _seen_for(self, i: int) -> set:
        """Source i's materialised seen-id set (drains pending chunks)."""
        seen = self._seen.get(i)
        if seen is None:
            seen = self._seen[i] = set()
        pending = self._pending.get(i)
        if pending:
            for chunk in pending:
                for e in chunk:
                    seen.add(e.item_id)
            pending.clear()
        return seen

    def __next__(self) -> Entry:
        if not self._started:
            self._start()
        sampler = self._sampler
        fen = self._fen
        if fen is None:
            # First single draw (or first after a batch): rebuild the
            # source-selection Fenwick from the live remaining counts.
            fen = self._fen = FenwickSampler(self._remaining)
        rng = self._rng
        cost = self._cost
        remaining = self._remaining
        enum_pools = self._enum_pools
        residual_source = self._n_sources - 1
        while fen.total > 0:
            i = fen.sample(rng)
            # --- draw one entry from the chosen source ----------------
            if i == residual_source:
                entry = self._next_residual()
            elif i in enum_pools:
                entry = next(enum_pools[i])
            else:
                node = self._nodes[i]
                seen = self._seen_for(i)
                entry = sampler._draw_checked(
                    node, i, self._counts, remaining,
                    seen, enum_pools, rng, cost)
                if entry is None:
                    continue
                seen.add(entry.item_id)
                # Epoch bookkeeping (see `_src_epoch`): the entry came
                # from the node's *current* fill.
                ep = node.fill_epoch
                prev = self._src_epoch.get(i)
                if prev is None:
                    self._src_epoch[i] = ep
                elif prev != ep:
                    self._src_epoch[i] = -1
            remaining[i] -= 1
            fen.add(i, -1)
            self._total -= 1
            cost.charge_sample()
            return entry
        raise StopIteration

    # ------------------------------------------------------------------
    # batched draws
    # ------------------------------------------------------------------

    def draw_batch(self, k: int) -> list[Entry]:
        """Up to k further samples in one call (fewer at exhaustion).

        Equivalent in distribution to k consecutive ``next`` calls, but
        with one source-allocation draw per batch instead of one
        Fenwick descent per sample, and contiguous buffer slices per
        source instead of per-sample buffer pointer chasing.
        """
        if k <= 0:
            return []
        if not self._started:
            self._start()
        if self._total <= 0:
            return []
        b = min(k, self._total)
        out: list[Entry] = []
        # Hot loop: the per-source draw bodies are inlined (rather than
        # one helper call per source) because a batch typically touches
        # most canonical sources with a handful of draws each — at ~70
        # sources per batch the call/setup overhead would dominate.
        sampler = self._sampler
        cost = self._cost
        remaining = self._remaining
        counts = self._counts
        nodes = self._nodes
        enum_pools = self._enum_pools
        threshold = sampler.enumerate_threshold
        residual_source = self._n_sources - 1
        fill = sampler._fill_buffer
        pending = self._pending
        src_epoch = self._src_epoch
        for i, share in self._allocate(b):
            if i == residual_source:
                # `share` partial Fisher-Yates steps over the residual
                # pool in one pass; the numpy path pre-draws the
                # uniforms (one RNG call for the whole share instead of
                # `share` python randrange calls) but performs the
                # identical swap walk.
                pool = self._residual_pool
                n = len(pool)
                pos = self._residual_pos
                np_rng = self._np_rng
                if np_rng is not None and share >= 8:
                    us = np_rng.random(share).tolist()
                    for x in range(share):
                        j = pos + int(us[x] * (n - pos))
                        pool[pos], pool[j] = pool[j], pool[pos]
                        out.append(pool[pos])
                        pos += 1
                    self._residual_pos = pos
                else:
                    for _ in range(share):
                        out.append(self._next_residual())
                remaining[i] -= share
                continue
            pool = enum_pools.get(i)
            if pool is None:
                node = nodes[i]
                count = counts[i]
                streak = 0
                rem = remaining[i]
                while share > 0:
                    if 1.0 - rem / count > threshold \
                            or streak >= _REJECT_STREAK_LIMIT:
                        remaining[i] = rem
                        pool = self._switch_to_enum(i)
                        break
                    # Consume the buffer as one contiguous slice and
                    # filter already-emitted entries in bulk — each
                    # buffered draw is accepted or rejected exactly as
                    # in the per-sample loop, minus the per-draw call
                    # overhead.  (The freshness check is inlined:
                    # `_ensure_buffer` is one call per source per batch
                    # otherwise.)
                    buf = node.sample_buffer
                    if buf is None or node.buffer_pos >= len(buf):
                        fill(node, cost)
                        buf = node.sample_buffer
                    if not buf:
                        entry = sampler._draw_from_subtree(node, cost)
                        if entry.item_id in self._seen_for(i):
                            cost.charge_rejection()
                            streak += 1
                            continue
                        chunk = (entry,)
                    else:
                        bpos = node.buffer_pos
                        take = min(share, len(buf) - bpos)
                        chunk = buf[bpos:bpos + take]
                        node.buffer_pos = bpos + take
                        # Same-fill slices are provably duplicate-free
                        # (see `_src_epoch`): record the chunk for lazy
                        # seen-set materialisation and move on without
                        # per-entry membership tests.
                        ep = node.fill_epoch
                        prev = src_epoch.get(i)
                        if prev is None or prev == ep:
                            src_epoch[i] = ep
                            chunks = pending.get(i)
                            if chunks is None:
                                chunks = pending[i] = []
                            chunks.append(chunk)
                            out += chunk
                            streak = 0
                            rem -= take
                            share -= take
                            continue
                        src_epoch[i] = -1
                    seen = self._seen_for(i)
                    got = 0
                    for e in chunk:
                        eid = e.item_id
                        if eid not in seen:
                            seen.add(eid)
                            out.append(e)
                            got += 1
                    rejected = len(chunk) - got
                    if rejected:
                        cost.charge_rejection(rejected)
                        streak += rejected
                    else:
                        streak = 0
                    rem -= got
                    share -= got
                else:
                    remaining[i] = rem
                    continue
            for entry in islice(pool, share):
                remaining[i] -= 1
                out.append(entry)
        self._total -= len(out)
        # Batch draws bypass the Fenwick tree entirely; drop it so the
        # next single draw rebuilds from the updated remaining counts.
        self._fen = None
        # The per-source fills above come out grouped by source; a
        # final shuffle restores exchangeability so the batch is a
        # uniformly ordered WOR sample sequence.
        if self._np_rng is not None:
            order = self._np_rng.permutation(len(out)).tolist()
            out = [out[j] for j in order]
        else:
            self._rng.shuffle(out)
        self._cost.charge_sample(len(out))
        return out

    def _allocate(self, b: int) -> list[tuple[int, int]]:
        """Split a batch of b over sources.

        The joint distribution of per-source draw counts under b
        uniform WOR draws from the union of disjoint pools is
        multivariate hypergeometric over the remaining counts; numpy
        samples it directly, the stdlib path realises the same law by
        bucketing b distinct uniform positions of the union.
        """
        remaining = self._remaining
        np = numpy_or_none()
        if np is not None:
            if self._np_rng is None:
                # Seeded from the stream rng, created only when the
                # first batch is requested, so single-draw streams
                # consume the stream rng exactly as before.
                self._np_rng = np.random.default_rng(
                    self._rng.getrandbits(64))
            shares = self._np_rng.multivariate_hypergeometric(
                remaining, b, method="count")
            nz = np.flatnonzero(shares)
            return list(zip(nz.tolist(), shares[nz].tolist()))
        positions = sorted(self._rng.sample(range(self._total), b))
        alloc: list[tuple[int, int]] = []
        it = iter(positions)
        pos: int | None = next(it)
        bound = 0
        for i, r in enumerate(remaining):
            bound += r
            share = 0
            while pos is not None and pos < bound:
                share += 1
                pos = next(it, None)
            if share:
                alloc.append((i, share))
            if pos is None:
                break
        return alloc

    def _switch_to_enum(self, i: int) -> Iterator[Entry]:
        """Enumerate source i's unseen remainder (same charges as the
        single-draw enumeration fallback in ``_draw_checked``)."""
        sampler = self._sampler
        node = self._nodes[i]
        seen = self._seen_for(i)
        pool = [e for e in _iter_subtree_entries(node)
                if e.item_id not in seen]
        sampler._charge_subtree_scan(node, self._cost)
        self._cost.charge_entries(self._counts[i])
        it = streaming_shuffle(pool, self._rng)
        self._enum_pools[i] = it
        return it
