"""QueryFirst baseline: range-report everything, then shuffle.

This is the "RangeReport" line of Figure 3(a).  The full range report costs
``O(r(N) + q)`` node reads before the first sample can be returned — the
cost is paid even when the user stops after one sample, which is exactly the
behaviour the online samplers avoid.  After the report, each sample is an
O(1) partial-shuffle step.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.permutation import streaming_shuffle
from repro.index.cost import CostCounter
from repro.index.rtree import Entry, RTree

__all__ = ["QueryFirstSampler"]


class QueryFirstSampler(SpatialSampler):
    """Materialise ``P ∩ Q`` first, sample from the materialised set."""

    name = "query-first"

    def __init__(self, tree: RTree):
        self.tree = tree

    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None) -> Iterator[Entry]:
        cost = cost if cost is not None else self.tree.cost
        matches = self.tree.range_query(query, cost)
        for entry in streaming_shuffle(matches, rng):
            cost.charge_sample()
            yield entry

    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        return self.tree.range_count(query, cost)
