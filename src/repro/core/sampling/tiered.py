"""Snapshot-pinned uniform sampling over the LSM tiers.

With the tiered ingest path attached (:mod:`repro.storage.lsm`), the
live set of a dataset is split across three kinds of tier: the main
RS-tree (possibly holding tombstone-masked dead entries), the sealed
immutable runs (each a mini RS-tree, also maskable), and the memtable.
:class:`TieredSampler` merges them into one stream that is *exactly*
uniform over the live records in range, using the same Fenwick-tree
source selection the RS-tree uses internally to merge canonical nodes.

Exactness argument
------------------
Each tier yields a uniform without-replacement stream over its own
in-range population (the RS-tree streams for main/runs, a streaming
Fisher–Yates shuffle for the memtable).  Dead copies are masked by
*victim-tagged* tombstones — a tombstone names the tier holding the
dead copy — and filtering a fixed subset out of a uniform
without-replacement stream leaves a uniform without-replacement stream
over the remainder.  A Fenwick tree over the per-tier *live remaining*
counts then picks the next source with probability
``remaining_i / total_remaining``, which makes every live record
equally likely at every step (PR 3's merge lemma, applied across tiers
instead of across canonical nodes).

For with-replacement mode the per-tier streams are uniform over the
*full* (masked + live) tier populations, so the alias table weighs
tiers by full counts and masked draws are rejected by redrawing the
tier as well — each accepted draw is then uniform over the live union.

Snapshot pinning
----------------
``range_count`` (which sessions always call before opening a stream)
materialises an :class:`LSMSnapshot`: the main tree's canonical set,
the run list, a frozen copy of the in-range memtable records and of
the tombstone mask.  The stream draws only from that snapshot, so

* inserts after open land in the live memtable, never in the frozen
  copy — the stream never sees them;
* deletes after open mutate the live tombstone map, not the snapshot's
  mask — the stream still covers the record (classic snapshot reads);
* a seal moves records memtable→run, but the snapshot already holds
  its own copies of both sides;
* a compaction *replaces* the main tree's node graph via bulk load —
  the snapshot's canonical set keeps the old immutable graph alive —
  and drops run objects from the live list while the snapshot's
  references keep the pinned runs intact.

Hence concurrent ingest never invalidates an in-flight stream, and
because memtable inserts do not touch the main tree, its canonical-set
cache stays hot between compactions.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterator

from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.permutation import streaming_shuffle
from repro.core.sampling.weighted import AliasTable, FenwickSampler
from repro.index.cost import CostCounter
from repro.index.rtree import Entry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import Dataset
    from repro.storage.lsm import LSMTree, SealedRun

__all__ = ["TieredSampler", "LSMSnapshot"]


class LSMSnapshot:
    """A frozen, pinned view of every tier for one query rect.

    Built once per query by :meth:`TieredSampler.range_count`; the
    stream draws only from this object, giving snapshot-consistent
    reads under concurrent ingest (see the module docstring).
    """

    __slots__ = ("query", "canon", "runs", "mem_entries",
                 "main_masked", "run_masked", "live_counts",
                 "full_counts")

    def __init__(self, query: Rect, canon, runs: "list[SealedRun]",
                 mem_entries: list[Entry],
                 main_masked: set[int],
                 run_masked: dict[int, set[int]],
                 live_counts: list[int], full_counts: list[int]):
        self.query = query
        self.canon = canon
        self.runs = runs
        self.mem_entries = mem_entries
        #: ids whose dead copy sits in the (pinned) main tree.
        self.main_masked = main_masked
        #: run id -> ids whose dead copy sits in that run.
        self.run_masked = run_masked
        #: live in-range count per source: [main, *runs, memtable].
        self.live_counts = live_counts
        #: total in-range count per source including masked entries.
        self.full_counts = full_counts

    @property
    def live_total(self) -> int:
        return sum(self.live_counts)


class TieredSampler(SpatialSampler):
    """Uniform sampler over main tree + sealed runs + memtable.

    ``Dataset.sampler_for`` routes every query here once an
    :class:`~repro.storage.lsm.LSMTree` is attached.  The underlying
    per-tier machinery is the existing RS-tree sampler; this class
    only adds snapshotting, tombstone filtering and the cross-tier
    Fenwick merge.
    """

    name = "lsm-tiered"

    def __init__(self, dataset: "Dataset"):
        self.dataset = dataset
        # range_count → open_stream pairs (the session protocol) reuse
        # one snapshot, keyed by the query rect.
        self._pending: dict[tuple, LSMSnapshot] = {}

    @property
    def lsm(self) -> "LSMTree":
        lsm = self.dataset.lsm
        if lsm is None:
            raise RuntimeError(
                "TieredSampler used without an attached LSMTree")
        return lsm

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    @staticmethod
    def _rect_key(query: Rect) -> tuple:
        return (tuple(query.lo), tuple(query.hi))

    def snapshot(self, query: Rect,
                 cost: CostCounter | None = None) -> LSMSnapshot:
        """Pin every tier for this query (see module docstring)."""
        dataset = self.dataset
        lsm = self.lsm
        cost = cost if cost is not None else dataset.tree.cost
        canon = dataset.tree.canonical_set(query, cost)
        runs = list(lsm.runs)
        dims = dataset.dims
        mem_entries = [Entry(r.record_id, r.key(dims))
                       for r in lsm.memtable.in_range(query)]
        main_masked: set[int] = set()
        run_masked: dict[int, set[int]] = {run.run_id: set()
                                           for run in runs}
        # Masked-in-rect counts, per tier the dead copy lives in.
        main_dead = 0
        run_dead = {run.run_id: 0 for run in runs}
        from repro.storage.lsm import MAIN_TIER
        for rid, victims in lsm.tombstones.items():
            for tier, key in victims.items():
                if tier == MAIN_TIER:
                    main_masked.add(rid)
                    if query.contains_point(key):
                        main_dead += 1
                elif tier in run_dead:
                    run_masked[tier].add(rid)
                    if query.contains_point(key):
                        run_dead[tier] += 1
        full_counts = [canon.count]
        live_counts = [canon.count - main_dead]
        for run in runs:
            full = run.range_count(query)
            full_counts.append(full)
            live_counts.append(full - run_dead[run.run_id])
        full_counts.append(len(mem_entries))
        live_counts.append(len(mem_entries))
        snap = LSMSnapshot(query, canon, runs, mem_entries,
                           main_masked, run_masked, live_counts,
                           full_counts)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.lsm.snapshots").inc()
        return snap

    def _take_snapshot(self, query: Rect,
                       cost: CostCounter | None) -> LSMSnapshot:
        snap = self._pending.pop(self._rect_key(query), None)
        if snap is None:
            snap = self.snapshot(query, cost)
        return snap

    # ------------------------------------------------------------------
    # the sampler protocol
    # ------------------------------------------------------------------

    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        """Exact live ``q = |P ∩ Q|``; pins the snapshot the paired
        ``open_stream``/``sample_stream`` call will draw from."""
        snap = self.snapshot(query, cost)
        self._pending[self._rect_key(query)] = snap
        return snap.live_total

    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None
                      ) -> Iterator[Entry]:
        cost = cost if cost is not None else self.dataset.tree.cost
        snap = self._take_snapshot(query, cost)
        return self._merged_stream(snap, rng, cost)

    def _tier_streams(self, snap: LSMSnapshot, rng: random.Random,
                      cost: CostCounter) -> list[Iterator[Entry]]:
        """Per-source live (tombstone-filtered) WOR streams, in the
        order of ``snap.live_counts``."""
        rs = self.dataset.samplers["rs-tree"]
        streams: list[Iterator[Entry]] = [
            _filtered(rs.sample_stream_from_canon(snap.canon, rng,
                                                  cost),
                      snap.main_masked)]
        for run in snap.runs:
            canon = run.tree.canonical_set(snap.query, cost)
            streams.append(_filtered(
                run.sampler.sample_stream_from_canon(canon, rng, cost),
                snap.run_masked[run.run_id]))
        streams.append(iter(streaming_shuffle(snap.mem_entries, rng)))
        return streams

    def _merged_stream(self, snap: LSMSnapshot, rng: random.Random,
                       cost: CostCounter) -> Iterator[Entry]:
        """Fenwick-merged uniform WOR stream over the live union."""
        if snap.live_total == 0:
            return
        streams = self._tier_streams(snap, rng, cost)
        fen = FenwickSampler(list(snap.live_counts))
        while fen.total > 0:
            i = fen.sample(rng)
            entry = next(streams[i])
            fen.add(i, -1)
            yield entry

    def sample_stream_with_replacement(
            self, query: Rect, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        cost = cost if cost is not None else self.dataset.tree.cost
        snap = self._take_snapshot(query, cost)
        return self._merged_wr_stream(snap, rng, cost)

    def _merged_wr_stream(self, snap: LSMSnapshot, rng: random.Random,
                          cost: CostCounter) -> Iterator[Entry]:
        """With-replacement merge: tiers weighted by *full* counts,
        masked draws rejected by redrawing the tier too.

        Every attempt is uniform over the union of full tier
        populations, so conditioning on acceptance (the drawn entry is
        live) leaves each accepted draw uniform over the live union —
        weighting by live counts but drawing from full-population
        streams would instead skew toward heavily-masked tiers.
        """
        if snap.live_total == 0:
            return
        rs = self.dataset.samplers["rs-tree"]
        n_runs = len(snap.runs)
        streams: list[Iterator[Entry] | None] = [
            rs.sample_stream_with_replacement_from_canon(
                snap.canon, rng, cost)]
        for run in snap.runs:
            canon = run.tree.canonical_set(snap.query, cost)
            streams.append(
                run.sampler.sample_stream_with_replacement_from_canon(
                    canon, rng, cost))
        alias = AliasTable([max(c, 0) for c in snap.full_counts])
        mem = snap.mem_entries
        while True:
            i = alias.sample(rng)
            if i == n_runs + 1:
                entry = mem[rng.randrange(len(mem))]
            else:
                entry = next(streams[i])
                masked = snap.main_masked if i == 0 else \
                    snap.run_masked[snap.runs[i - 1].run_id]
                if entry.item_id in masked:
                    cost.charge_rejection()
                    continue
            yield entry


def _filtered(stream: Iterator[Entry],
              masked: set[int]) -> Iterator[Entry]:
    """Drop tombstone-masked entries from one tier's stream."""
    if not masked:
        return stream
    return (e for e in stream if e.item_id not in masked)
