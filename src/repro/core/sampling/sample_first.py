"""SampleFirst baseline: draw from all of P, keep the in-range hits.

Each attempt picks a uniformly random record of the data set (one random
block read — in a database this is "fetch a random rid") and tests it
against the query.  A draw lands inside Q with probability ``q/N``, so one
accepted sample costs ``O(N/q)`` attempts in expectation — catastrophic for
selective queries, and non-terminating when ``q = 0``.  The paper names
exactly this failure mode; we guard it with an attempt cap that falls back
to an exact emptiness check.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.errors import EmptyRangeError
from repro.index.cost import CostCounter
from repro.index.rtree import Entry, RTree

__all__ = ["SampleFirstSampler"]

# Synthetic block-id offset so uniform record fetches are charged as
# random (non-sequential) reads by the cost model.
_RANDOM_FETCH_BASE = 1 << 40


class SampleFirstSampler(SpatialSampler):
    """Uniform draws from P filtered by Q, without replacement.

    The sampler snapshots the entry array once (this models a storage
    engine that can fetch record number i in one read).  ``attempt_factor``
    bounds the rejection loop: after ``attempt_factor * N`` consecutive
    misses it performs an exact count to distinguish "unlucky" from
    "empty range" instead of spinning forever.
    """

    name = "sample-first"

    def __init__(self, tree: RTree, attempt_factor: int = 8):
        if attempt_factor < 1:
            raise ValueError("attempt_factor must be >= 1")
        self.tree = tree
        self.attempt_factor = attempt_factor
        self._entries: list[Entry] = list(tree.iter_entries())

    def refresh(self) -> None:
        """Re-snapshot the entry array after the tree was updated."""
        self._entries = list(self.tree.iter_entries())

    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None) -> Iterator[Entry]:
        cost = cost if cost is not None else self.tree.cost
        entries = self._entries
        n = len(entries)
        if n == 0:
            return
        emitted: set[int] = set()
        q: int | None = None  # learned lazily, only if we start struggling
        leaf_cap = max(1, self.tree.leaf_capacity)
        misses = 0
        cap = self.attempt_factor * n
        while True:
            idx = rng.randrange(n)
            entry = entries[idx]
            # One random block read to fetch the record.
            cost.charge_node(_RANDOM_FETCH_BASE + idx // leaf_cap)
            cost.charge_entries(1)
            if query.contains_point(entry.point) \
                    and entry.item_id not in emitted:
                emitted.add(entry.item_id)
                cost.charge_sample()
                yield entry
                misses = 0
                if q is not None and len(emitted) >= q:
                    return
                continue
            cost.charge_rejection()
            misses += 1
            if misses >= cap:
                # Pay for an exact count once instead of looping forever.
                if q is None:
                    q = self.tree.range_count(query, cost)
                if q == 0:
                    raise EmptyRangeError(
                        "query range contains no points; SampleFirst "
                        "would never terminate")
                if len(emitted) >= q:
                    return
                misses = 0

    def sample_stream_with_replacement(
            self, query: Rect, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        """Native mode for SampleFirst: just don't dedupe the hits."""
        cost = cost if cost is not None else self.tree.cost
        entries = self._entries
        n = len(entries)
        if n == 0:
            return
        leaf_cap = max(1, self.tree.leaf_capacity)
        misses = 0
        cap = self.attempt_factor * n
        while True:
            idx = rng.randrange(n)
            entry = entries[idx]
            cost.charge_node(_RANDOM_FETCH_BASE + idx // leaf_cap)
            cost.charge_entries(1)
            if query.contains_point(entry.point):
                cost.charge_sample()
                misses = 0
                yield entry
                continue
            cost.charge_rejection()
            misses += 1
            if misses >= cap:
                if self.tree.range_count(query, cost) == 0:
                    raise EmptyRangeError(
                        "query range contains no points; SampleFirst "
                        "would never terminate")
                misses = 0

    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        return self.tree.range_count(query, cost)
