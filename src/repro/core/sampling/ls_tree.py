"""LS-tree: the paper's level-sampling index.

Construction (Section 3.1): starting from ``P_0 = P``, independently keep
each element with probability 1/2 to form ``P_1``, then ``P_2``, ... until
the top level is small; build an R-tree ``T_i`` over each ``P_i``.  Level
sizes form a geometric series, so total space is still O(N).

Equivalently — and this is how we implement it — every point draws one
i.i.d. geometric *level* ``ℓ(e) = #heads before the first tail`` and lives
in trees ``T_0 .. T_ℓ(e)``.

Query: range-report from the *top* tree downward.  The in-range points of
``T_i`` are a coin-flip sample of ``P ∩ Q`` with rate ``1/2^i``; shuffling
them and skipping points already emitted by higher levels yields a stream
whose every k-prefix is a uniform random k-subset of ``P ∩ Q`` (levels are
i.i.d. per point, so the induced order is exchangeable).  The user who stops
after k samples has, in expectation, only descended to the tree where
``q/2^j ≈ k``, paying ``O(k) + Σ_j r(N/2^j)`` — and because each level is an
ordinary R-tree range query, the O(k) term is sequential block I/O, not k
random reads.

Updates: a new point draws its level and is inserted into trees
``T_0..level``; deletion removes it from the same trees (the index remembers
each item's level).
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Sequence

from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.permutation import streaming_shuffle
from repro.errors import IndexError_, UpdateError
from repro.index.cost import CostCounter
from repro.index.rtree import Entry, RTree

__all__ = ["LSTree", "LSTreeSampler"]


class LSTree:
    """The level-sampling forest: R-trees over geometric subsamples.

    ``p`` is the per-level survival probability (1/2 in the paper).
    ``max_levels`` caps the forest height; the cap is far above
    ``log_{1/p} N`` for any realistic N, so it never binds in practice.
    """

    def __init__(self, dims: int, rng: random.Random | None = None,
                 p: float = 0.5, max_levels: int = 64,
                 leaf_capacity: int = 64, branch_capacity: int = 16):
        if not 0.0 < p < 1.0:
            raise IndexError_("survival probability must be in (0, 1)")
        self.dims = dims
        self.p = p
        self.max_levels = max_levels
        self.leaf_capacity = leaf_capacity
        self.branch_capacity = branch_capacity
        self.rng = rng if rng is not None else random.Random()
        self.cost = CostCounter()
        self.trees: list[RTree] = [self._new_tree()]
        self.levels: dict[int, int] = {}  # item_id -> level

    def _new_tree(self) -> RTree:
        tree = RTree(self.dims, leaf_capacity=self.leaf_capacity,
                     branch_capacity=self.branch_capacity)
        tree.cost = self.cost  # share one counter across the forest
        return tree

    def _draw_level(self) -> int:
        level = 0
        while level < self.max_levels - 1 and self.rng.random() < self.p:
            level += 1
        return level

    # ------------------------------------------------------------------
    # construction & updates
    # ------------------------------------------------------------------

    def bulk_load(self, items: Iterable[tuple[int, Sequence[float]]]) -> None:
        """Assign levels and STR-build every tree of the forest."""
        materialised = [(item_id, tuple(float(c) for c in pt))
                        for item_id, pt in items]
        self.levels = {item_id: self._draw_level()
                       for item_id, _ in materialised}
        top = max(self.levels.values(), default=0)
        per_level: list[list[tuple[int, tuple[float, ...]]]] = [
            [] for _ in range(top + 1)]
        for item_id, pt in materialised:
            for lvl in range(self.levels[item_id] + 1):
                per_level[lvl].append((item_id, pt))
        self.trees = []
        for lvl in range(top + 1):
            tree = self._new_tree()
            tree.bulk_load(per_level[lvl])
            self.trees.append(tree)

    def insert(self, item_id: int, point: Sequence[float]) -> None:
        """Insert a point: draw its level, add to trees 0..level."""
        if item_id in self.levels:
            raise UpdateError(f"item {item_id} already in LS-tree")
        level = self._draw_level()
        self.levels[item_id] = level
        while len(self.trees) <= level:
            self.trees.append(self._new_tree())
        for lvl in range(level + 1):
            self.trees[lvl].insert(item_id, point)

    def delete(self, item_id: int, point: Sequence[float]) -> bool:
        """Remove a point from every level it lives in."""
        level = self.levels.pop(item_id, None)
        if level is None:
            return False
        for lvl in range(min(level, len(self.trees) - 1) + 1):
            if not self.trees[lvl].delete(item_id, point):
                raise UpdateError(
                    f"item {item_id} missing from level {lvl} despite "
                    f"recorded level {level}")
        self._trim_empty_top()
        return True

    def _trim_empty_top(self) -> None:
        while len(self.trees) > 1 and len(self.trees[-1]) == 0:
            self.trees.pop()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.trees[0]) if self.trees else 0

    @property
    def num_levels(self) -> int:
        """Number of trees currently in the forest."""
        return len(self.trees)

    def total_entries(self) -> int:
        """Space accounting: entries summed across every level."""
        return sum(len(t) for t in self.trees)

    def validate(self) -> None:
        """Check every tree plus level downward-closure; raises on bugs."""
        for tree in self.trees:
            tree.validate()
        # Membership must be downward closed in levels.
        for lvl in range(1, len(self.trees)):
            upper_ids = {e.item_id for e in self.trees[lvl].iter_entries()}
            lower_ids = {e.item_id
                         for e in self.trees[lvl - 1].iter_entries()}
            if not upper_ids <= lower_ids:
                raise IndexError_(
                    f"level {lvl} contains ids missing from level "
                    f"{lvl - 1}")

    def expected_levels(self) -> int:
        """The ``ℓ = O(log N)`` the paper quotes, for diagnostics."""
        n = len(self)
        return max(1, int(math.log(max(n, 2), 1.0 / self.p)))


class LSTreeSampler(SpatialSampler):
    """Sample stream over an :class:`LSTree` (top tree downward)."""

    name = "ls-tree"

    def __init__(self, forest: LSTree):
        self.forest = forest

    @property
    def tree(self) -> RTree:
        """The base tree (level 0) — the full data set."""
        return self.forest.trees[0]

    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None) -> Iterator[Entry]:
        cost = cost if cost is not None else self.forest.cost
        emitted: set[int] = set()
        for level in range(self.forest.num_levels - 1, -1, -1):
            matches = self.forest.trees[level].range_query(query, cost)
            for entry in streaming_shuffle(matches, rng):
                if entry.item_id in emitted:
                    continue
                emitted.add(entry.item_id)
                cost.charge_sample()
                yield entry

    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        return self.forest.trees[0].range_count(
            query, cost if cost is not None else self.forest.cost)
