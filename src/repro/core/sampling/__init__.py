"""Spatial online sampling (Definition 1 of the paper).

Given N points stored in an index and a range query Q, each sampler in this
package returns a *stream* of uniformly random points from ``P ∩ Q``,
one at a time, until the consumer stops — k is never known in advance.

Implementations, in the order the paper introduces them:

``QueryFirstSampler``
    Materialise ``P ∩ Q`` with a full range report, then shuffle.
    Cost ``O(r(N) + q)`` before the first sample.  (The paper's
    "RangeReport" baseline in Figure 3a.)
``SampleFirstSampler``
    Repeatedly draw uniformly from all of P and keep the hits.
    Expected ``O(N/q)`` per sample; never terminates when q = 0 (guarded
    here by an attempt cap and an exact emptiness check).
``RandomPathSampler``
    Olken's root-to-leaf random walk on the R-tree, restricted to children
    intersecting Q, with an acceptance/rejection correction that keeps the
    output exactly uniform.  ``O(log N)`` per attempt, but every sample
    takes a fresh random root-to-leaf path — poor block locality.
``LSTreeSampler``
    The paper's first index: a *level-sampling* forest of R-trees over
    geometrically down-sampled copies of P.
``RSTreeSampler``
    The paper's second index: a single Hilbert R-tree whose nodes carry
    pre-shuffled sample buffers, combined with lazy canonical-set
    exploration and Fenwick-tree weighted node selection.

``TieredSampler``
    The LSM-era merge: one exactly-uniform stream over main tree +
    sealed runs + memtable, with tombstone masking and per-query
    snapshot pinning (see :mod:`repro.storage.lsm`).

``repro.core.sampling.weighted`` holds the shared O(1)/O(log n)
weighted-draw structures (:class:`AliasTable`, :class:`FenwickSampler`)
the hot paths select sources with.
"""

from repro.core.sampling.base import SamplerStats, SpatialSampler
from repro.core.sampling.ls_tree import LSTree, LSTreeSampler
from repro.core.sampling.permutation import streaming_shuffle
from repro.core.sampling.query_first import QueryFirstSampler
from repro.core.sampling.random_path import RandomPathSampler
from repro.core.sampling.rs_tree import RSTreeSampler
from repro.core.sampling.sample_first import SampleFirstSampler
from repro.core.sampling.tiered import LSMSnapshot, TieredSampler
from repro.core.sampling.weighted import AliasTable, FenwickSampler

__all__ = [
    "AliasTable",
    "FenwickSampler",
    "LSMSnapshot",
    "LSTree",
    "LSTreeSampler",
    "QueryFirstSampler",
    "RandomPathSampler",
    "RSTreeSampler",
    "SampleFirstSampler",
    "SamplerStats",
    "SpatialSampler",
    "TieredSampler",
    "streaming_shuffle",
]
