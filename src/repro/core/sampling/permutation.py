"""Lazy random permutation utilities.

Online sampling never knows k in advance, so shuffling an entire result set
up front wastes work when the user stops after a handful of samples.
:func:`streaming_shuffle` performs a Fisher-Yates shuffle *incrementally*:
the i-th yielded element costs O(1), and stopping after k elements does only
k swaps.  Every prefix of the stream is a uniform random k-subset in uniform
random order — exactly the guarantee online estimators need.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["streaming_shuffle", "sample_without_replacement"]


def streaming_shuffle(items: Sequence[T], rng: random.Random
                      ) -> Iterator[T]:
    """Yield ``items`` in uniformly random order, lazily.

    The input sequence is copied once (O(n)), then each yielded element is
    an O(1) partial Fisher-Yates step.  The copy means the caller's list is
    never mutated.
    """
    pool = list(items)
    n = len(pool)
    for i in range(n):
        j = rng.randrange(i, n)
        pool[i], pool[j] = pool[j], pool[i]
        yield pool[i]


def sample_without_replacement(items: Sequence[T], k: int,
                               rng: random.Random) -> list[T]:
    """Uniform random k-subset in random order (k may exceed len)."""
    out = []
    for item in streaming_shuffle(items, rng):
        if len(out) >= k:
            break
        out.append(item)
    return out
