"""RandomPath: Olken's random root-to-leaf walk on an R-tree.

Adapted from Olken's dissertation (sampling from B-trees and R-trees) as
described in Section 3.1 of the paper.  One sample is drawn by descending
from the root, at each node choosing a child among those intersecting the
query with probability proportional to its subtree count.  The restricted
walk alone is biased (sparsely covered branches are over-weighted), so an
acceptance/rejection correction is applied:

* along the path, accumulate ``a = Π (Σ intersecting-children counts /
  node count)``;
* at the leaf, pick uniformly among the in-range entries and accept the
  result with probability ``a × |in-range entries| / |leaf entries|``.

A short calculation shows the probability of emitting any fixed in-range
point is exactly ``1/N`` per attempt, i.e. accepted samples are exactly
uniform on ``P ∩ Q``.  Each attempt costs ``O(log N)`` node reads — good in
RAM, but every accepted sample pays a full root-to-leaf walk of *random*
block reads, which is why the paper's Figure 3(a) shows this method scaling
poorly with k on disk-resident data.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.geometry import Rect
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.permutation import streaming_shuffle
from repro.index.cost import CostCounter
from repro.index.rtree import Entry, Node, RTree

__all__ = ["RandomPathSampler"]


class RandomPathSampler(SpatialSampler):
    """Olken-style acceptance/rejection sampling over an R-tree.

    ``enumerate_threshold`` controls the without-replacement fallback: once
    the emitted set covers more than that fraction of ``q``, the sampler
    switches to enumerating the remaining points (rejection would thrash).
    """

    name = "random-path"

    def __init__(self, tree: RTree, enumerate_threshold: float = 0.5):
        if not 0.0 < enumerate_threshold <= 1.0:
            raise ValueError("enumerate_threshold must be in (0, 1]")
        self.tree = tree
        self.enumerate_threshold = enumerate_threshold

    # ------------------------------------------------------------------

    def _attempt(self, query: Rect, rng: random.Random, cost: CostCounter
                 ) -> Entry | None:
        """One root-to-leaf walk; returns an entry or ``None`` (rejected)."""
        node = self.tree.root
        if node is None or not query.intersects(node.mbr):
            return None
        accept = 1.0
        while True:
            cost.charge_node(node.node_id)
            if node.is_leaf:
                entries = node.entries or []
                cost.charge_entries(len(entries))
                in_range = [e for e in entries
                            if query.contains_point(e.point)]
                if not in_range:
                    return None
                accept *= len(in_range) / len(entries)
                if rng.random() >= accept:
                    return None
                return in_range[rng.randrange(len(in_range))]
            children = [c for c in node.children or []
                        if query.intersects(c.mbr)]
            if not children:
                return None
            total = sum(c.count for c in children)
            accept *= total / node.count
            # Weighted choice by subtree count.
            pick = rng.randrange(total)
            cum = 0
            chosen: Node | None = None
            for child in children:
                cum += child.count
                if pick < cum:
                    chosen = child
                    break
            node = chosen  # type: ignore[assignment]

    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None) -> Iterator[Entry]:
        cost = cost if cost is not None else self.tree.cost
        if self.tree.root is None:
            return
        # q is needed to decide termination without spinning forever; for
        # this method the count costs a cheap canonical traversal.
        q = self.tree.range_count(query, cost)
        if q == 0:
            return
        emitted: set[int] = set()
        switch_at = max(1, int(q * self.enumerate_threshold))
        while len(emitted) < switch_at:
            entry = self._attempt(query, rng, cost)
            if entry is None:
                cost.charge_rejection()
                continue
            if entry.item_id in emitted:
                cost.charge_rejection()
                continue
            emitted.add(entry.item_id)
            cost.charge_sample()
            yield entry
        if len(emitted) >= q:
            return
        # Without-replacement tail: enumerate what's left and shuffle.
        remaining = [e for e in self.tree.range_query(query, cost)
                     if e.item_id not in emitted]
        for entry in streaming_shuffle(remaining, rng):
            cost.charge_sample()
            yield entry

    def sample_stream_with_replacement(
            self, query: Rect, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        """With-replacement mode is RandomPath's native behaviour: every
        accepted walk is an independent uniform draw."""
        cost = cost if cost is not None else self.tree.cost
        if self.tree.root is None:
            return
        if self.tree.range_count(query, cost) == 0:
            return
        while True:
            entry = self._attempt(query, rng, cost)
            if entry is None:
                cost.charge_rejection()
                continue
            cost.charge_sample()
            yield entry

    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        return self.tree.range_count(query, cost)
