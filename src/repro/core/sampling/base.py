"""Common protocol for spatial online samplers.

A sampler is bound to one indexed data set.  For each query it produces an
iterator of :class:`~repro.index.rtree.Entry` objects drawn uniformly at
random from ``P ∩ Q`` without replacement; the iterator ends (raises
``StopIteration``) only when every in-range point has been emitted.  The
consumer — an online estimator or a query session — pulls one sample at a
time and stops whenever it is satisfied, which is the paper's Definition 1.

``SamplerStats`` packages the cost-counter deltas a sampler accumulated for
one query, used by the benchmark harness and the query optimizer's feedback
loop.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import islice
from typing import Iterator

from repro.core.geometry import Rect
from repro.index.cost import CostCounter, CostModel, DEFAULT_COST_MODEL
from repro.index.rtree import Entry
from repro.obs import NULL_OBS, Observability

__all__ = ["SpatialSampler", "SamplerStats", "take"]


@dataclass(slots=True)
class SamplerStats:
    """Work a sampler did for one query (cost delta + sample count)."""

    sampler: str
    samples: int
    cost: CostCounter

    def simulated_seconds(self, model: CostModel = DEFAULT_COST_MODEL
                          ) -> float:
        """The cost delta under the disk cost model."""
        return model.simulated_seconds(self.cost)


class SpatialSampler(ABC):
    """Interface every sampling strategy implements.

    Subclasses must set ``name`` (used by the optimizer and benchmarks) and
    implement :meth:`sample_stream` and :meth:`range_count`.
    """

    name: str = "abstract"

    #: Observability sink shared by every instance unless rebound; the
    #: class-level default is the no-op pair, so uninstrumented
    #: samplers pay nothing.
    obs: Observability = NULL_OBS

    #: Reachable fraction of the last stream's population.  Local
    #: samplers always see everything (1.0); fault-tolerant distributed
    #: samplers lower it when a shard becomes unreachable and no
    #: replica holds a copy (graceful degradation), so sessions and
    #: estimators can report honestly instead of silently under-
    #: covering.  See ``docs/fault_tolerance.md``.
    coverage: float = 1.0

    def bind_observability(self, obs: Observability) -> None:
        """Attach a live registry/tracer pair (datasets do this)."""
        self.obs = obs

    def open_stream(self, query: Rect, rng: random.Random,
                    cost: CostCounter | None = None,
                    with_replacement: bool = False) -> Iterator[Entry]:
        """Instrumented stream entry point (sessions call this).

        Exactly :meth:`sample_stream` (or the with-replacement
        variant) when observability is off; with a live registry it
        also counts opened streams and emitted samples per sampler.
        """
        if with_replacement:
            stream = self.sample_stream_with_replacement(query, rng,
                                                         cost=cost)
        else:
            stream = self.sample_stream(query, rng, cost=cost)
        registry = self.obs.registry
        if not registry.enabled:
            return stream
        registry.counter("storm.sampler.streams",
                         sampler=self.name).inc()
        return _CountedStream(stream, registry.counter(
            "storm.sampler.samples", sampler=self.name))

    @abstractmethod
    def sample_stream(self, query: Rect, rng: random.Random,
                      cost: CostCounter | None = None) -> Iterator[Entry]:
        """Uniform without-replacement sample stream from ``P ∩ Q``."""

    def sample_stream_with_replacement(
            self, query: Rect, rng: random.Random,
            cost: CostCounter | None = None) -> Iterator[Entry]:
        """Uniform *with-replacement* stream (Definition 1's other mode).

        The stream is infinite for non-empty ranges — the consumer stops
        it.  The default implementation materialises one
        without-replacement pass and resamples it, which is exact but
        pays the full pass; index samplers override with cheaper draws.
        """
        pool = list(self.sample_stream(query, rng, cost=cost))
        if not pool:
            return
        while True:
            yield pool[rng.randrange(len(pool))]

    @abstractmethod
    def range_count(self, query: Rect,
                    cost: CostCounter | None = None) -> int:
        """Exact ``q = |P ∩ Q|`` (used for finite-population corrections
        and SUM/COUNT estimators)."""

    def draw_batch(self, stream: Iterator[Entry], k: int) -> list[Entry]:
        """Pull up to k entries from an open stream in one call.

        The batched fast path sessions and estimators use.  Streams
        that implement their own ``draw_batch`` (the RS-tree canonical
        stream composes whole batches with one multivariate-
        hypergeometric source allocation) get it called directly;
        plain generators fall back to one C-level ``islice`` pull per
        batch.  Returns fewer than k entries only at stream
        exhaustion.
        """
        batched = getattr(stream, "draw_batch", None)
        if batched is not None:
            return batched(k)
        return list(islice(stream, k))

    def sample(self, query: Rect, k: int, rng: random.Random,
               cost: CostCounter | None = None) -> list[Entry]:
        """Convenience: the first k samples (fewer when q < k).

        The stream is closed before returning so ``finally``-based
        cost/trace accounting inside samplers runs promptly rather
        than at GC time.
        """
        stream = self.sample_stream(query, rng, cost=cost)
        out = self.draw_batch(stream, k)
        close = getattr(stream, "close", None)
        if close is not None:
            close()
        return out

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class _CountedStream:
    """Pass-through that tallies each emitted sample.

    A delegating iterator rather than a generator so instrumented
    streams keep their ``draw_batch`` and ``close`` fast paths — a
    generator wrapper would hide them and silently drop instrumented
    sessions back to per-sample pulls.
    """

    __slots__ = ("_stream", "_counter")

    def __init__(self, stream: Iterator[Entry], counter):
        self._stream = stream
        self._counter = counter

    def __iter__(self) -> _CountedStream:
        return self

    def __next__(self) -> Entry:
        entry = next(self._stream)
        self._counter.inc()
        return entry

    def draw_batch(self, k: int) -> list[Entry]:
        batched = getattr(self._stream, "draw_batch", None)
        if batched is not None:
            batch = batched(k)
        else:
            batch = list(islice(self._stream, k))
        if batch:
            self._counter.inc(len(batch))
        return batch

    def close(self) -> None:
        close = getattr(self._stream, "close", None)
        if close is not None:
            close()


def take(stream: Iterator[Entry], k: int) -> list[Entry]:
    """First k elements of a stream (all of them when shorter)."""
    out: list[Entry] = []
    for entry in stream:
        out.append(entry)
        if len(out) >= k:
            break
    return out
