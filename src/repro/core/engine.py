"""The STORM engine: datasets, sampler suites, and online analytics.

:class:`Dataset` owns one indexed spatio-temporal data set — the Hilbert
R-tree (shared by the QueryFirst/SampleFirst/RandomPath baselines and the
RS-tree), the LS-tree forest, the record store and the per-dataset query
optimizer.  :class:`StormEngine` is the user-facing registry plus
convenience analytics (`avg`, `sum`, `count`, `kde`, ...), each of which
opens an :class:`~repro.core.session.OnlineQuerySession` under the hood.

This module is deliberately storage-agnostic: records live in memory here,
and the storage engine / data connector layers feed records in through
:meth:`StormEngine.create_dataset` or the importer.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Mapping

from repro.core.estimators.aggregates import (AvgEstimator, CountEstimator,
                                              SumEstimator)
from repro.core.estimators.base import OnlineEstimator
from repro.core.estimators.groupby import GroupByEstimator
from repro.core.estimators import GridSpec, OnlineKDE
from repro.core.estimators.text import ShortTextEstimator
from repro.core.estimators.trajectory import TrajectoryEstimator
from repro.core.geometry import Rect
from repro.core.optimizer import QueryOptimizer, default_sampler_suite
from repro.core.records import Record, STRange, attribute_getter
from repro.core.sampling.base import SpatialSampler
from repro.core.sampling.ls_tree import LSTree
from repro.core.session import OnlineQuerySession, ProgressPoint, \
    StopCondition
from repro.errors import StormError, UpdateError
from repro.index.hilbert_rtree import HilbertRTree
from repro.obs import NULL_OBS, Observability

__all__ = ["Dataset", "StormEngine"]

_GEO_FALLBACK_BOUNDS_2D = Rect((-180.0, -90.0), (180.0, 90.0))


def _padded_bounds(records: list[Record], dims: int,
                   pad_fraction: float = 0.25) -> Rect:
    """Bounding box of the records, padded so later inserts stay inside
    the Hilbert grid."""
    if not records:
        if dims == 2:
            return _GEO_FALLBACK_BOUNDS_2D
        return Rect((-180.0, -90.0, 0.0), (180.0, 90.0, 1.0))
    box = Rect.bounding([r.key(dims) for r in records])
    lo, hi = [], []
    for l, h in zip(box.lo, box.hi):
        pad = max((h - l) * pad_fraction, 1e-9)
        lo.append(l - pad)
        hi.append(h + pad)
    return Rect(lo, hi)


class Dataset:
    """One spatio-temporal data set with its full index/sampler suite."""

    def __init__(self, name: str, records: Iterable[Record],
                 dims: int = 3, leaf_capacity: int = 64,
                 branch_capacity: int = 16, hilbert_bits: int = 16,
                 rs_buffer_size: int = 64, build_ls: bool = True,
                 bounds: Rect | None = None, seed: int = 0,
                 obs: Observability | None = None):
        if dims not in (2, 3):
            raise StormError("datasets are 2-d (spatial) or 3-d (ST)")
        self.name = name
        self.dims = dims
        self.obs = obs if obs is not None else NULL_OBS
        self.records: dict[int, Record] = {}
        ordered: list[Record] = []
        for record in records:
            if record.record_id in self.records:
                raise StormError(
                    f"duplicate record id {record.record_id} in {name}")
            self.records[record.record_id] = record
            ordered.append(record)
        self.bounds = bounds if bounds is not None \
            else _padded_bounds(ordered, dims)
        self._build_rng = random.Random(seed)
        self.tree = HilbertRTree(dims, self.bounds, bits=hilbert_bits,
                                 leaf_capacity=leaf_capacity,
                                 branch_capacity=branch_capacity)
        self.tree.bulk_load(
            (r.record_id, r.key(dims)) for r in ordered)
        self.tree.bind_observability(self.obs)
        self.forest: LSTree | None = None
        if build_ls:
            self.forest = LSTree(dims,
                                 rng=random.Random(
                                     self._build_rng.getrandbits(32)),
                                 leaf_capacity=leaf_capacity,
                                 branch_capacity=branch_capacity)
            self.forest.bulk_load(
                (r.record_id, r.key(dims)) for r in ordered)
        self.samplers = default_sampler_suite(
            self.tree, self.forest, rs_buffer_size=rs_buffer_size,
            rs_rng=random.Random(self._build_rng.getrandbits(32)))
        self.samplers["rs-tree"].prepare()
        for sampler in self.samplers.values():
            sampler.bind_observability(self.obs)
        self.optimizer = QueryOptimizer(self.samplers)
        self._sample_first_dirty = False
        #: Tiered ingest path (see :mod:`repro.storage.lsm`); when
        #: attached, inserts/deletes route through the memtable and
        #: tombstones instead of mutating the main tree directly.
        self.lsm = None
        self._publish_shape()

    def _publish_shape(self) -> None:
        """Export dataset/index shape gauges to the registry."""
        registry = self.obs.registry
        if not registry.enabled:
            return
        registry.gauge("storm.dataset.records",
                       dataset=self.name).set(len(self.records))
        shape = self.tree.shape()
        for key, value in shape.items():
            registry.gauge(f"storm.index.{key}",
                           dataset=self.name).set(value)

    # -- record access ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def lookup(self, record_id: int) -> Record:
        """The record with the given id (KeyError when absent)."""
        return self.records[record_id]

    def to_rect(self, query: "Rect | STRange") -> Rect:
        """Convert an STRange/Rect query to this dataset's box type."""
        if isinstance(query, STRange):
            return query.to_rect(self.dims)
        if query.dim != self.dims:
            raise StormError(
                f"query is {query.dim}-d but dataset {self.name} is "
                f"{self.dims}-d")
        return query

    # -- updates -----------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Insert one record into the store and every index.

        With an LSM attached, the record lands in the memtable (no
        main-tree mutation, so the canonical-set cache stays hot).
        """
        if record.record_id in self.records:
            raise UpdateError(
                f"record {record.record_id} already in {self.name}")
        self.records[record.record_id] = record
        if self.lsm is not None:
            self.lsm.insert(record)
        else:
            key = record.key(self.dims)
            self.tree.insert(record.record_id, key)
            if self.forest is not None:
                self.forest.insert(record.record_id, key)
        self._sample_first_dirty = True
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.dataset.inserts",
                             dataset=self.name).inc()
            registry.gauge("storm.dataset.records",
                           dataset=self.name).set(len(self.records))

    def delete(self, record_id: int) -> bool:
        """Delete a record everywhere; returns whether it existed."""
        record = self.records.pop(record_id, None)
        if record is None:
            return False
        if self.lsm is not None:
            self.lsm.delete(record)
        else:
            key = record.key(self.dims)
            if not self.tree.delete(record_id, key):
                raise UpdateError(
                    f"record {record_id} present in store but not in "
                    f"index")
            if self.forest is not None:
                self.forest.delete(record_id, key)
        self._sample_first_dirty = True
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.dataset.deletes",
                             dataset=self.name).inc()
            registry.gauge("storm.dataset.records",
                           dataset=self.name).set(len(self.records))
        return True

    def rebuild(self) -> None:
        """Rebuild every index from the current records.

        Dynamic inserts degrade packing over time (bulk-loaded trees are
        near-optimal, insertion-built ones are not); the update manager
        triggers this once churn passes its threshold.  Sample buffers
        and LS levels are re-drawn, so post-rebuild samples are as fresh
        as after an initial load.
        """
        if self.lsm is not None:
            # A compaction *is* the LSM's rebuild: it folds every run
            # and tombstone into one fresh bulk load of the main tree.
            self.lsm.seal()
            self.lsm.compact()
            return
        self._rebuild_indexes(self.records.values())
        registry = self.obs.registry
        if registry.enabled:
            registry.counter("storm.dataset.rebuilds",
                             dataset=self.name).inc()

    def _rebuild_indexes(self, records: Iterable[Record]) -> None:
        """Bulk-load the main tree (and forest) from ``records``.

        The swap is atomic from a sampler's point of view: bulk load
        builds an all-new node graph, so canonical sets pinned by
        in-flight snapshot streams keep the old graph alive and stay
        valid.  With an LSM attached this is the compaction primitive
        — ``records`` is then the main-tier subset, not the full store.
        """
        ordered = list(records)
        self.tree.bulk_load(
            (r.record_id, r.key(self.dims)) for r in ordered)
        if self.forest is not None:
            self.forest.bulk_load(
                (r.record_id, r.key(self.dims)) for r in ordered)
        self.samplers["rs-tree"].prepare()
        self._sample_first_dirty = True
        registry = self.obs.registry
        if registry.enabled:
            self._publish_shape()

    # -- tiered ingest (LSM) ---------------------------------------------

    def attach_lsm(self, lsm) -> None:
        """Adopt a tiered ingest path (``LSMTree.open`` calls this).

        Registers the snapshot-pinned tiered sampler; from here on
        ``sampler_for`` routes every default query through it, since
        the per-tree samplers only see the main tier.
        """
        from repro.core.sampling.tiered import TieredSampler
        self.lsm = lsm
        sampler = TieredSampler(self)
        sampler.bind_observability(self.obs)
        self.samplers[sampler.name] = sampler

    # -- sessions ------------------------------------------------------------

    def sampler_for(self, query: Rect, method: str | None = None,
                    expected_k: int | None = None) -> SpatialSampler:
        """Resolve a sampler: explicit method or optimizer choice.

        With an LSM attached the default is always the tiered sampler
        — the per-tree samplers only cover the main tier, so letting
        the optimizer pick one would silently miss memtable and run
        records.  An explicit ``method`` still wins (diagnostics).
        """
        if method is not None:
            if method not in self.samplers:
                raise StormError(
                    f"unknown sampling method {method!r}; available: "
                    f"{sorted(self.samplers)}")
            sampler = self.samplers[method]
        elif self.lsm is not None:
            sampler = self.samplers["lsm-tiered"]
        else:
            sampler = self.optimizer.choose(query, expected_k).sampler
        if sampler.name == "sample-first" and self._sample_first_dirty:
            sampler.refresh()  # type: ignore[attr-defined]
            self._sample_first_dirty = False
        return sampler

    def session(self, query: "Rect | STRange",
                estimator: OnlineEstimator, method: str | None = None,
                rng: random.Random | None = None,
                expected_k: int | None = None,
                report_every: int = 16,
                with_replacement: bool = False,
                obs: Observability | None = None,
                labels: dict[str, object] | None = None,
                clock=None) -> OnlineQuerySession:
        """Open an online query session over this dataset.

        ``obs`` overrides the dataset's observability sink for this one
        session (EXPLAIN uses a private tracer this way).  ``labels``
        adds metric/span labels on top of the dataset's own — the
        query service tags every session with its tenant this way.
        ``clock`` overrides the session's time source (durable server
        streams use a logical clock for byte-reproducible frames).
        """
        rect = self.to_rect(query)
        sampler = self.sampler_for(rect, method, expected_k)
        merged: dict[str, object] = {"dataset": self.name}
        if labels:
            merged.update(labels)
        kwargs = {} if clock is None else {"clock": clock}
        return OnlineQuerySession(sampler, estimator, rect, self.lookup,
                                  rng=rng, report_every=report_every,
                                  with_replacement=with_replacement,
                                  obs=obs if obs is not None
                                  else self.obs,
                                  labels=merged, **kwargs)


class StormEngine:
    """Registry of datasets plus one-call online analytics."""

    def __init__(self, seed: int = 0,
                 obs: Observability | None = None):
        self.datasets: dict[str, Dataset] = {}
        self._seed = seed
        self._rng = random.Random(seed)
        #: Observability sink inherited by every dataset this engine
        #: creates (no-op unless the caller opts in).
        self.obs = obs if obs is not None else NULL_OBS

    # -- dataset management ----------------------------------------------

    def create_dataset(self, name: str, records: Iterable[Record],
                       **kwargs) -> Dataset:
        """Build and register a new indexed dataset from records."""
        if name in self.datasets:
            raise StormError(f"dataset {name!r} already exists")
        kwargs.setdefault("obs", self.obs)
        dataset = Dataset(name, records,
                          seed=self._rng.getrandbits(32), **kwargs)
        self.datasets[name] = dataset
        return dataset

    def register(self, dataset: Dataset) -> None:
        """Register an externally built dataset (e.g. distributed)."""
        if dataset.name in self.datasets:
            raise StormError(f"dataset {dataset.name!r} already exists")
        self.datasets[dataset.name] = dataset

    def drop_dataset(self, name: str) -> None:
        """Remove a dataset from the registry."""
        if name not in self.datasets:
            raise StormError(f"no dataset named {name!r}")
        del self.datasets[name]

    def dataset(self, name: str) -> Dataset:
        """Look up a registered dataset by name."""
        if name not in self.datasets:
            raise StormError(
                f"no dataset named {name!r}; available: "
                f"{sorted(self.datasets)}")
        return self.datasets[name]

    # -- keyword queries ---------------------------------------------------

    def execute(self, query_text: str,
                rng: random.Random | None = None):
        """Run one keyword-language query (see :mod:`repro.query`).

        Returns the :class:`repro.query.executor.QueryResult`.  This is
        the convenience path; build a
        :class:`~repro.query.executor.QueryExecutor` directly to reuse
        one rng across many queries.
        """
        from repro.query.executor import QueryExecutor
        return QueryExecutor(
            self, rng=rng if rng is not None else
            random.Random(self._rng.getrandbits(32))).execute(query_text)

    # -- one-call online analytics -----------------------------------------

    def _run(self, dataset: str, query, estimator: OnlineEstimator,
             stop: StopCondition, method: str | None,
             rng: random.Random | None) -> ProgressPoint:
        ds = self.dataset(dataset)
        session = ds.session(query, estimator, method=method,
                             rng=rng if rng is not None else
                             random.Random(self._rng.getrandbits(32)))
        return session.run_to_stop(stop)

    def avg(self, dataset: str, attribute: str, query,
            stop: StopCondition = StopCondition(max_samples=1000),
            method: str | None = None,
            rng: random.Random | None = None) -> ProgressPoint:
        """Online AVG(attribute) over a spatio-temporal range."""
        return self._run(dataset, query,
                         AvgEstimator(attribute_getter(attribute)),
                         stop, method, rng)

    def sum(self, dataset: str, attribute: str, query,
            stop: StopCondition = StopCondition(max_samples=1000),
            method: str | None = None,
            rng: random.Random | None = None) -> ProgressPoint:
        """Online SUM(attribute) over a spatio-temporal range."""
        return self._run(dataset, query,
                         SumEstimator(attribute_getter(attribute)),
                         stop, method, rng)

    def count(self, dataset: str, query,
              predicate: Callable[[Record], bool] | None = None,
              stop: StopCondition = StopCondition(max_samples=1000),
              method: str | None = None,
              rng: random.Random | None = None) -> ProgressPoint:
        """Online COUNT(*) (exact) or COUNT WHERE predicate (estimated)."""
        return self._run(dataset, query, CountEstimator(predicate),
                         stop, method, rng)

    def group_by(self, dataset: str, key: str, query,
                 attribute: str | None = None,
                 stop: StopCondition = StopCondition(max_samples=1000),
                 method: str | None = None,
                 rng: random.Random | None = None) -> ProgressPoint:
        """Online GROUP BY ``key``: per-group shares (and per-group
        AVG/SUM when ``attribute`` is given)."""
        accessor = attribute_getter(attribute) \
            if attribute is not None else None
        return self._run(dataset, query,
                         GroupByEstimator(key, attribute=accessor),
                         stop, method, rng)

    def kde(self, dataset: str, query, grid: GridSpec,
            bandwidth: float | None = None, kernel: str = "gaussian",
            stop: StopCondition = StopCondition(max_samples=2000),
            method: str | None = None,
            rng: random.Random | None = None) -> ProgressPoint:
        """Online kernel density map over the query range."""
        return self._run(dataset, query,
                         OnlineKDE(grid, bandwidth=bandwidth,
                                   kernel=kernel),
                         stop, method, rng)

    def top_terms(self, dataset: str, query, text_field: str = "text",
                  background: Mapping[str, float] | None = None,
                  stop: StopCondition = StopCondition(max_samples=2000),
                  method: str | None = None,
                  rng: random.Random | None = None) -> ProgressPoint:
        """Online short-text understanding over the query range."""
        return self._run(dataset, query,
                         ShortTextEstimator(text_field=text_field,
                                            background=background),
                         stop, method, rng)

    def trajectory(self, dataset: str, query, key_field: str,
                   key_value, stop: StopCondition =
                   StopCondition(max_samples=2000),
                   method: str | None = None,
                   rng: random.Random | None = None) -> ProgressPoint:
        """Online trajectory reconstruction for one entity."""
        return self._run(dataset, query,
                         TrajectoryEstimator(key_field=key_field,
                                             key_value=key_value),
                         stop, method, rng)
