"""Deterministic, seedable fault injection for the simulated substrate.

The demo scenario STORM targets — a cluster of commodity machines
streaming uniform samples under live load — fails in mundane ways: a
machine dies mid-stream, a disk read errors, a node falls behind.  A
:class:`FaultPlan` describes those failures declaratively so every run
is reproducible:

* **crash/recover schedules** per node (``worker:1``, ``machine:2``):
  half-open windows on the plan's *logical clock*, which advances one
  tick per fault-gated operation.  Schedules are therefore independent
  of wall time and identical across runs;
* **per-operation error probabilities** (``dfs.read``,
  ``worker.fetch_batch`` ...): each gated call flips a coin from the
  plan's seeded RNG.  Ops without a configured rate never consume
  randomness, so adding a rate for one op cannot shift another's
  outcomes;
* **slow-node latency multipliers**: scale a node's simulated seconds
  (index I/O and network), which is how timeouts are exercised.

Consumers: :class:`~repro.storage.dfs.SimulatedDFS` gates block reads
(failover walks the replica list), :class:`~repro.distributed.cluster.
Worker` gates ``open_stream``/``fetch_batch``/``range_count`` (a down
worker raises ``WorkerUnavailableError`` and loses its in-memory
streams), and :class:`~repro.distributed.dist_sampler.
DistributedSampler` retries, fails over to shard replicas, or degrades
gracefully.  ``docs/fault_tolerance.md`` documents the failure model;
``docs/operations.md`` the knobs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.errors import StormError

__all__ = ["CrashWindow", "FaultPlan"]


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """One outage: the node is down for ticks in ``[start, until)``.

    ``until=None`` means the node never recovers.
    """

    start: int
    until: int | None = None

    def covers(self, tick: int) -> bool:
        """Whether the node is down at the given logical tick."""
        if tick < self.start:
            return False
        return self.until is None or tick < self.until


class FaultPlan:
    """A reproducible schedule of crashes, errors and slowdowns.

    All configuration methods return ``self`` so plans read as one
    chained expression::

        plan = (FaultPlan(seed=7)
                .crash("worker:1", at=200, until=400)
                .error_rate("worker.fetch_batch", 0.05)
                .slow("worker:2", 4.0))
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._windows: dict[str, list[CrashWindow]] = {}
        self._error_rates: dict[str, float] = {}
        self._slow: dict[str, float] = {}
        self._clock = 0

    # -- configuration -----------------------------------------------------

    def crash(self, node: str, at: int = 0,
              until: int | None = None) -> "FaultPlan":
        """Schedule an outage for a node (``worker:i`` / ``machine:i``)."""
        if at < 0:
            raise StormError(f"crash start must be >= 0, got {at}")
        if until is not None and until <= at:
            raise StormError(
                f"crash window [{at}, {until}) is empty")
        self._windows.setdefault(node, []).append(CrashWindow(at, until))
        return self

    def error_rate(self, op: str, probability: float) -> "FaultPlan":
        """Set the per-call failure probability of one operation.

        ``op`` is an exact name (``worker.fetch_batch``), a prefix
        wildcard (``worker.*``), or ``*`` for every gated op.
        """
        if not 0.0 <= probability <= 1.0:
            raise StormError(
                f"error rate must be in [0, 1], got {probability}")
        self._error_rates[op] = probability
        return self

    def slow(self, node: str, multiplier: float) -> "FaultPlan":
        """Multiply a node's simulated latency (must be >= 1)."""
        if multiplier < 1.0:
            raise StormError(
                f"latency multiplier must be >= 1, got {multiplier}")
        self._slow[node] = multiplier
        return self

    # -- the clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """The current logical tick."""
        return self._clock

    def tick(self) -> int:
        """Advance the logical clock by one gated operation."""
        self._clock += 1
        return self._clock

    # -- queries (called by the gated substrate) ---------------------------

    def is_down(self, node: str) -> bool:
        """Whether the node is inside a crash window right now."""
        windows = self._windows.get(node)
        if not windows:
            return False
        return any(w.covers(self._clock) for w in windows)

    def rate_for(self, op: str) -> float:
        """The effective error rate for an op (exact > prefix > ``*``)."""
        rate = self._error_rates.get(op)
        if rate is not None:
            return rate
        head = op.split(".", 1)[0]
        rate = self._error_rates.get(head + ".*")
        if rate is not None:
            return rate
        return self._error_rates.get("*", 0.0)

    def should_fail(self, op: str) -> bool:
        """Flip the op's seeded coin (never consumes RNG at rate 0)."""
        rate = self.rate_for(op)
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def latency_multiplier(self, node: str) -> float:
        """The node's simulated-latency multiplier (1.0 by default)."""
        return self._slow.get(node, 1.0)

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready view of the plan's configuration."""
        return {
            "seed": self.seed,
            "crashes": [
                {"node": node, "at": w.start, "until": w.until}
                for node in sorted(self._windows)
                for w in self._windows[node]],
            "error_rates": dict(sorted(self._error_rates.items())),
            "slow_nodes": dict(sorted(self._slow.items())),
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_dict`'s schema."""
        plan = cls(seed=int(spec.get("seed", 0)))
        for entry in spec.get("crashes", ()):
            plan.crash(entry["node"], at=int(entry.get("at", 0)),
                       until=(None if entry.get("until") is None
                              else int(entry["until"])))
        for op, rate in spec.get("error_rates", {}).items():
            plan.error_rate(op, float(rate))
        for node, mult in spec.get("slow_nodes", {}).items():
            plan.slow(node, float(mult))
        return plan

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``)."""
        try:
            with open(path) as f:
                spec = json.load(f)
        except (OSError, ValueError) as exc:
            raise StormError(f"cannot load fault plan {path!r}: {exc}")
        if not isinstance(spec, dict):
            raise StormError(
                f"fault plan {path!r} must be a JSON object")
        return cls.from_dict(spec)

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} tick={self._clock} "
                f"crashes={sum(map(len, self._windows.values()))} "
                f"error_ops={len(self._error_rates)} "
                f"slow={len(self._slow)}>")
