"""Deterministic, seedable fault injection for the simulated substrate.

The demo scenario STORM targets — a cluster of commodity machines
streaming uniform samples under live load — fails in mundane ways: a
machine dies mid-stream, a disk read errors, a node falls behind.  A
:class:`FaultPlan` describes those failures declaratively so every run
is reproducible:

* **crash/recover schedules** per node (``worker:1``, ``machine:2``):
  half-open windows on the plan's *logical clock*, which advances one
  tick per fault-gated operation.  Schedules are therefore independent
  of wall time and identical across runs;
* **per-operation error probabilities** (``dfs.read``,
  ``worker.fetch_batch`` ...): each gated call flips a coin from the
  plan's seeded RNG.  Ops without a configured rate never consume
  randomness, so adding a rate for one op cannot shift another's
  outcomes;
* **slow-node latency multipliers**: scale a node's simulated seconds
  (index I/O and network), which is how timeouts are exercised;
* **write crash points** (:meth:`FaultPlan.crash_write` /
  :meth:`FaultPlan.torn_write`): the *n*-th write to a file whose name
  starts with a prefix kills the simulated process mid-write — either
  before any byte lands, or after a torn prefix of the payload is
  durably applied.  This is how the durability layer
  (:mod:`repro.storage.wal`) exercises crash-during-update and
  torn-final-segment recovery;
* **delay points** (:meth:`FaultPlan.delay`): the *n*-th gated call of
  an operation stalls for a configured number of seconds.  This is the
  service layer's "wedged quantum" gate: the scheduler sleeps inside
  ``server.quantum`` and the watchdog must fail that one stream while
  the other tenants keep drawing.  Chaos clients use the same spec
  (ops like ``client.read``) to decide when to stall or drop a
  connection mid-stream.

Consumers: :class:`~repro.storage.dfs.SimulatedDFS` gates block reads
(failover walks the replica list), :class:`~repro.distributed.cluster.
Worker` gates ``open_stream``/``fetch_batch``/``range_count`` (a down
worker raises ``WorkerUnavailableError`` and loses its in-memory
streams), and :class:`~repro.distributed.dist_sampler.
DistributedSampler` retries, fails over to shard replicas, or degrades
gracefully.  ``docs/fault_tolerance.md`` documents the failure model;
``docs/operations.md`` the knobs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.errors import StormError

__all__ = ["CrashWindow", "DelayFault", "FaultPlan", "WriteFault"]


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """One outage: the node is down for ticks in ``[start, until)``.

    ``until=None`` means the node never recovers.
    """

    start: int
    until: int | None = None

    def covers(self, tick: int) -> bool:
        """Whether the node is down at the given logical tick."""
        if tick < self.start:
            return False
        return self.until is None or tick < self.until


@dataclass(slots=True)
class WriteFault:
    """One scheduled write crash.

    The fault fires on the ``countdown``-th write (counting from 1)
    whose file name starts with ``match``.  ``keep_fraction`` is the
    fraction of the *newly written* bytes that land durably before the
    crash — ``None`` means the crash strikes before any byte does (the
    old file contents, if any, survive untouched).
    """

    match: str
    countdown: int
    keep_fraction: float | None = None


@dataclass(slots=True)
class DelayFault:
    """One scheduled stall.

    The fault fires on the ``countdown``-th gated call (counting from
    1) of the exact operation ``op``, stalling it for ``seconds``.
    """

    op: str
    countdown: int
    seconds: float


class FaultPlan:
    """A reproducible schedule of crashes, errors and slowdowns.

    All configuration methods return ``self`` so plans read as one
    chained expression::

        plan = (FaultPlan(seed=7)
                .crash("worker:1", at=200, until=400)
                .error_rate("worker.fetch_batch", 0.05)
                .slow("worker:2", 4.0))
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._windows: dict[str, list[CrashWindow]] = {}
        self._error_rates: dict[str, float] = {}
        self._slow: dict[str, float] = {}
        self._write_faults: list[WriteFault] = []
        self._delays: list[DelayFault] = []
        self._clock = 0

    # -- configuration -----------------------------------------------------

    def crash(self, node: str, at: int = 0,
              until: int | None = None) -> "FaultPlan":
        """Schedule an outage for a node (``worker:i`` / ``machine:i``)."""
        if at < 0:
            raise StormError(f"crash start must be >= 0, got {at}")
        if until is not None and until <= at:
            raise StormError(
                f"crash window [{at}, {until}) is empty")
        self._windows.setdefault(node, []).append(CrashWindow(at, until))
        return self

    def error_rate(self, op: str, probability: float) -> "FaultPlan":
        """Set the per-call failure probability of one operation.

        ``op`` is an exact name (``worker.fetch_batch``), a prefix
        wildcard (``worker.*``), or ``*`` for every gated op.
        """
        if not 0.0 <= probability <= 1.0:
            raise StormError(
                f"error rate must be in [0, 1], got {probability}")
        self._error_rates[op] = probability
        return self

    def slow(self, node: str, multiplier: float) -> "FaultPlan":
        """Multiply a node's simulated latency (must be >= 1)."""
        if multiplier < 1.0:
            raise StormError(
                f"latency multiplier must be >= 1, got {multiplier}")
        self._slow[node] = multiplier
        return self

    def crash_write(self, match: str, nth: int = 1) -> "FaultPlan":
        """Kill the ``nth`` write under a file-name prefix *before*
        any byte lands (the pre-append / pre-flush crash point)."""
        if nth < 1:
            raise StormError(f"nth write must be >= 1, got {nth}")
        self._write_faults.append(WriteFault(match, nth, None))
        return self

    def torn_write(self, match: str, nth: int = 1,
                   keep_fraction: float = 0.5) -> "FaultPlan":
        """Kill the ``nth`` write under a file-name prefix *mid-write*:
        ``keep_fraction`` of the newly written bytes land durably, the
        rest are lost (the torn-final-segment crash point)."""
        if nth < 1:
            raise StormError(f"nth write must be >= 1, got {nth}")
        if not 0.0 <= keep_fraction <= 1.0:
            raise StormError(
                f"keep_fraction must be in [0, 1], got {keep_fraction}")
        self._write_faults.append(WriteFault(match, nth, keep_fraction))
        return self

    def delay(self, op: str, seconds: float,
              nth: int = 1) -> "FaultPlan":
        """Stall the ``nth`` gated call of ``op`` for ``seconds``
        (one-shot; the service layer's wedged-quantum / stalled-client
        gate)."""
        if nth < 1:
            raise StormError(f"nth call must be >= 1, got {nth}")
        if seconds < 0:
            raise StormError(
                f"delay seconds must be >= 0, got {seconds}")
        self._delays.append(DelayFault(op, nth, seconds))
        return self

    # -- the clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """The current logical tick."""
        return self._clock

    def tick(self) -> int:
        """Advance the logical clock by one gated operation."""
        self._clock += 1
        return self._clock

    # -- queries (called by the gated substrate) ---------------------------

    def is_down(self, node: str) -> bool:
        """Whether the node is inside a crash window right now."""
        windows = self._windows.get(node)
        if not windows:
            return False
        return any(w.covers(self._clock) for w in windows)

    def rate_for(self, op: str) -> float:
        """The effective error rate for an op (exact > prefix > ``*``)."""
        rate = self._error_rates.get(op)
        if rate is not None:
            return rate
        head = op.split(".", 1)[0]
        rate = self._error_rates.get(head + ".*")
        if rate is not None:
            return rate
        return self._error_rates.get("*", 0.0)

    def should_fail(self, op: str) -> bool:
        """Flip the op's seeded coin (never consumes RNG at rate 0)."""
        rate = self.rate_for(op)
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def latency_multiplier(self, node: str) -> float:
        """The node's simulated-latency multiplier (1.0 by default)."""
        return self._slow.get(node, 1.0)

    def take_write_fault(self, name: str) -> WriteFault | None:
        """Account one write to ``name`` against the scheduled write
        faults; the fired fault (if its countdown just hit zero).

        Each write counts against only the *first* matching schedule
        entry, so stacked faults fire deterministically in the order
        they were configured.  Fired faults are consumed (one-shot).
        """
        for i, fault in enumerate(self._write_faults):
            if name.startswith(fault.match):
                fault.countdown -= 1
                if fault.countdown == 0:
                    return self._write_faults.pop(i)
                return None
        return None

    def take_delay(self, op: str) -> float:
        """Account one gated call of ``op`` against the scheduled
        delays; the stall in seconds (0.0 when none fired).

        Like write faults, each call counts against only the *first*
        matching schedule entry and fired delays are consumed
        (one-shot), so stacked stalls fire deterministically in
        configuration order.
        """
        for i, fault in enumerate(self._delays):
            if fault.op == op:
                fault.countdown -= 1
                if fault.countdown == 0:
                    return self._delays.pop(i).seconds
                return 0.0
        return 0.0

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready view of the plan's configuration."""
        return {
            "seed": self.seed,
            "crashes": [
                {"node": node, "at": w.start, "until": w.until}
                for node in sorted(self._windows)
                for w in self._windows[node]],
            "error_rates": dict(sorted(self._error_rates.items())),
            "slow_nodes": dict(sorted(self._slow.items())),
            "write_faults": [
                {"match": f.match, "nth": f.countdown,
                 "keep_fraction": f.keep_fraction}
                for f in self._write_faults],
            "delays": [
                {"op": f.op, "nth": f.countdown,
                 "seconds": f.seconds}
                for f in self._delays],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_dict`'s schema."""
        plan = cls(seed=int(spec.get("seed", 0)))
        for entry in spec.get("crashes", ()):
            plan.crash(entry["node"], at=int(entry.get("at", 0)),
                       until=(None if entry.get("until") is None
                              else int(entry["until"])))
        for op, rate in spec.get("error_rates", {}).items():
            plan.error_rate(op, float(rate))
        for node, mult in spec.get("slow_nodes", {}).items():
            plan.slow(node, float(mult))
        for entry in spec.get("write_faults", ()):
            keep = entry.get("keep_fraction")
            if keep is None:
                plan.crash_write(entry["match"],
                                 nth=int(entry.get("nth", 1)))
            else:
                plan.torn_write(entry["match"],
                                nth=int(entry.get("nth", 1)),
                                keep_fraction=float(keep))
        for entry in spec.get("delays", ()):
            plan.delay(entry["op"], float(entry["seconds"]),
                       nth=int(entry.get("nth", 1)))
        return plan

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``)."""
        try:
            with open(path) as f:
                spec = json.load(f)
        except (OSError, ValueError) as exc:
            raise StormError(f"cannot load fault plan {path!r}: {exc}")
        if not isinstance(spec, dict):
            raise StormError(
                f"fault plan {path!r} must be a JSON object")
        return cls.from_dict(spec)

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} tick={self._clock} "
                f"crashes={sum(map(len, self._windows.values()))} "
                f"error_ops={len(self._error_rates)} "
                f"slow={len(self._slow)} "
                f"write_faults={len(self._write_faults)} "
                f"delays={len(self._delays)}>")
