"""Extensions beyond the demo paper's core system.

``irs1d``
    A practical take on *independent range sampling* (Hu, Qiao & Tao,
    PODS 2014), which the paper's related-work section describes as
    "purely theoretical, too complicated to be implemented or used in
    practice ... only for one-dimensional data".  This module implements
    a simplified static 1-d structure with the property that matters —
    every sample is independent across and within queries — as a
    baseline to compare the paper's 2-d/3-d indexes against on 1-d
    workloads.
"""

from repro.extensions.irs1d import IRS1D

__all__ = ["IRS1D"]
