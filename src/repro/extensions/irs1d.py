"""Independent range sampling on static 1-d data (simplified).

Hu, Qiao & Tao (PODS 2014) ask for samples that are independent both
within one query and across queries — stronger than Definition 1, which
only needs per-query uniformity.  Their external-memory structure is
intricate; on static in-memory 1-d data the essence is simple:

* keep the points in a sorted array;
* a range query ``[lo, hi]`` maps to a contiguous rank interval
  ``[i, j)`` via two binary searches (O(log N));
* a with-replacement sample is an independent uniform rank in
  ``[i, j)`` — O(1) per sample, trivially independent across queries;
* a without-replacement stream uses a *sparse* Fisher-Yates over the
  virtual index range (a dict holding only displaced slots), O(1)
  amortised per sample and O(k) memory for k samples — no O(q)
  materialisation.

Updates are not supported (the point the paper makes — "their external
memory data structure is static"); ``IRS1D`` raises on mutation
attempts so misuse is loud.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterable, Iterator, Sequence

from repro.errors import EmptyRangeError, IndexError_

__all__ = ["IRS1D"]


class IRS1D:
    """Static sorted-array index with independent range sampling."""

    def __init__(self, items: Iterable[tuple[int, float]]):
        pairs = sorted(((float(value), int(item_id))
                        for item_id, value in items))
        self._values = [v for v, _ in pairs]
        self._ids = [i for _, i in pairs]

    def __len__(self) -> int:
        return len(self._values)

    # ------------------------------------------------------------------

    def rank_range(self, lo: float, hi: float) -> tuple[int, int]:
        """Ranks [i, j) of points with value in the closed [lo, hi]."""
        if lo > hi:
            raise IndexError_("inverted 1-d range")
        i = bisect.bisect_left(self._values, lo)
        j = bisect.bisect_right(self._values, hi)
        return i, j

    def range_count(self, lo: float, hi: float) -> int:
        i, j = self.rank_range(lo, hi)
        return j - i

    # ------------------------------------------------------------------

    def sample_one(self, lo: float, hi: float, rng: random.Random
                   ) -> tuple[int, float]:
        """One independent uniform sample from the range: O(log N)."""
        i, j = self.rank_range(lo, hi)
        if i >= j:
            raise EmptyRangeError("no points in the 1-d range")
        rank = rng.randrange(i, j)
        return self._ids[rank], self._values[rank]

    def sample_stream_with_replacement(
            self, lo: float, hi: float, rng: random.Random
            ) -> Iterator[tuple[int, float]]:
        """Independent draws forever (caller stops).  Yields nothing on
        an empty range."""
        i, j = self.rank_range(lo, hi)
        if i >= j:
            return
        while True:
            rank = rng.randrange(i, j)
            yield self._ids[rank], self._values[rank]

    def sample_stream(self, lo: float, hi: float, rng: random.Random
                      ) -> Iterator[tuple[int, float]]:
        """Uniform without-replacement stream via sparse Fisher-Yates.

        Memory is O(samples consumed), not O(q): only swapped slots are
        stored.  Every prefix is a uniform k-subset in uniform order.
        """
        i, j = self.rank_range(lo, hi)
        displaced: dict[int, int] = {}
        for cursor in range(i, j):
            pick = rng.randrange(cursor, j)
            chosen = displaced.get(pick, pick)
            displaced[pick] = displaced.get(cursor, cursor)
            yield self._ids[chosen], self._values[chosen]

    # ------------------------------------------------------------------
    # loud non-support of updates (the structure is static)
    # ------------------------------------------------------------------

    def insert(self, item_id: int, value: float) -> None:
        """Unsupported: the structure is static; raises IndexError_."""
        raise IndexError_(
            "IRS1D is static (Hu et al.'s structure does not support "
            "dynamic updates); rebuild instead")

    def delete(self, item_id: int, value: float) -> None:
        """Unsupported: the structure is static; raises IndexError_."""
        raise IndexError_(
            "IRS1D is static (Hu et al.'s structure does not support "
            "dynamic updates); rebuild instead")

    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "IRS1D":
        """Build with sequential ids (convenience for benchmarks)."""
        return cls(enumerate(values))
