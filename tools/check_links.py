#!/usr/bin/env python3
"""Relative-link checker for the repo's Markdown docs.

``python tools/check_links.py`` scans ``*.md`` in the repo root and
``docs/`` for Markdown links and verifies that every *relative* target
exists (including ``#fragment`` anchors against the target file's
headings).  External ``http(s)://`` and ``mailto:`` links are skipped —
CI must not depend on the network.  Exits non-zero listing every broken
link.  Stdlib only.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — target captured up to the closing paren; images and
#: reference-style definitions are covered by the same shape.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor for a heading."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = path.read_text(encoding="utf-8")
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(text)}


def markdown_files() -> list[Path]:
    files = sorted(ROOT.glob("*.md"))
    docs = ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    text = CODE_FENCE_RE.sub("", text)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path):
                problems.append(f"{path.relative_to(ROOT)}: "
                                f"missing anchor {target!r}")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(ROOT)}: "
                            f"broken link {target!r}")
            continue
        if fragment and resolved.suffix == ".md" \
                and slugify(fragment) not in anchors_of(resolved):
            problems.append(f"{path.relative_to(ROOT)}: "
                            f"missing anchor {target!r}")
    return problems


def main() -> int:
    files = markdown_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
