#!/usr/bin/env python
"""Bench regression gate: fresh bench JSON vs the committed baseline.

``make bench-smoke`` (and CI) produce fresh ``BENCH_sampling.json`` /
``BENCH_recovery.json`` files; this script compares the throughput
figures in a fresh file against the committed baseline and fails the
build when any figure regressed past a tolerance band.  Correctness
flags in the recovery bench (``ok``/``state_matches``) are enforced
exactly — a wrong recovery is a failure at any speed.

Baselines come from ``git show HEAD:<file>`` by default (the committed
state of the working tree, which is what a CI checkout has), or from
``--baseline PATH`` for testing and local comparisons.

Throughput on shared CI runners is noisy, so the default tolerance is
wide (a fresh run may be 50% below baseline before the gate trips) —
the gate exists to catch order-of-magnitude regressions (an
accidentally-disabled cache, a quadratic loop), not 5% jitter.  Checks
that a metric *improved* never fail.

Usage::

    python tools/check_bench.py BENCH_sampling.json
    python tools/check_bench.py BENCH_sampling.json BENCH_recovery.json
    python tools/check_bench.py fresh.json --baseline old.json \
        --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

DEFAULT_TOLERANCE = 0.5


class BaselineUnavailable(Exception):
    """The baseline could not be loaded (not fatal: gate is skipped)."""


def load_baseline(path: str, baseline_path: "str | None") -> dict:
    """The baseline document: an explicit file, or HEAD's copy."""
    if baseline_path is not None:
        try:
            with open(baseline_path) as f:
                return json.load(f)
        except (OSError, ValueError) as exc:
            raise BaselineUnavailable(
                f"cannot read baseline {baseline_path}: {exc}")
    try:
        proc = subprocess.run(["git", "show", f"HEAD:{path}"],
                              capture_output=True, text=True)
    except OSError as exc:
        # No git binary (bare containers) must mean "record, don't
        # gate", exactly like a file absent from HEAD — not a build
        # failure.
        raise BaselineUnavailable(f"cannot invoke git: {exc}")
    if proc.returncode != 0:
        raise BaselineUnavailable(
            f"no committed baseline for {path} "
            f"({proc.stderr.strip() or 'git show failed'})")
    try:
        return json.loads(proc.stdout)
    except ValueError as exc:
        raise BaselineUnavailable(
            f"committed {path} is not valid JSON: {exc}")


def _metrics(doc: dict) -> dict[str, float]:
    """The comparable throughput figures of one bench document.

    Returns a flat ``label -> value`` dict; labels are stable across
    runs so fresh and baseline line up by key.
    """
    out: dict[str, float] = {}
    samplers = doc.get("samplers")
    if isinstance(samplers, dict):
        for method in sorted(samplers):
            value = samplers[method].get("samples_per_sec")
            if isinstance(value, (int, float)):
                out[f"samplers.{method}.samples_per_sec"] = value
    cache = doc.get("block_cache")
    if isinstance(cache, dict):
        value = cache.get("bytes_per_point")
        if isinstance(value, (int, float)):
            out["block_cache.bytes_per_point"] = value
    replay = doc.get("replay")
    if isinstance(replay, dict):
        value = replay.get("ops_per_second")
        if isinstance(value, (int, float)):
            out["replay.ops_per_second"] = value
    ingest = doc.get("ingest")
    if isinstance(ingest, dict):
        for key in ("inserts_per_sec", "speedup_vs_per_record",
                    "query_p99_seconds"):
            value = ingest.get(key)
            if isinstance(value, (int, float)):
                out[f"ingest.{key}"] = value
    server = doc.get("server")
    if isinstance(server, dict):
        for key in ("streams_per_sec", "query_p50_seconds",
                    "query_p99_seconds", "fairness_index"):
            value = server.get(key)
            if isinstance(value, (int, float)):
                out[f"server.{key}"] = value
    chaos = doc.get("server_chaos")
    if isinstance(chaos, dict):
        for key in ("recovery_seconds", "served_streams"):
            value = chaos.get(key)
            if isinstance(value, (int, float)):
                out[f"server_chaos.{key}"] = value
    return out


def _lower_is_better(label: str) -> bool:
    """Metrics that regress *upward*: latencies (``*_seconds``) and
    storage density (``bytes_per_point``)."""
    return label.endswith("_seconds") or label.endswith("bytes_per_point")


def _correctness(doc: dict) -> list[tuple[str, bool]]:
    """(label, ok) correctness flags that must hold exactly."""
    out: list[tuple[str, bool]] = []
    if "ok" in doc:
        out.append(("ok", bool(doc["ok"])))
    for i, scenario in enumerate(doc.get("scenarios", [])):
        if isinstance(scenario, dict) and "ok" in scenario:
            name = scenario.get("scenario", str(i))
            out.append((f"scenarios.{name}.ok", bool(scenario["ok"])))
    chaos = doc.get("server_chaos")
    if isinstance(chaos, dict) and "resume_deterministic" in chaos:
        # A resumed detached stream that is not byte-identical to an
        # uninterrupted run is wrong at any speed.
        out.append(("server_chaos.resume_deterministic",
                    bool(chaos["resume_deterministic"])))
    return out


def check_file(path: str, baseline_path: "str | None",
               tolerance: float) -> list[str]:
    """Compare one fresh bench file; returns failure messages."""
    with open(path) as f:
        fresh = json.load(f)
    failures: list[str] = []
    for label, ok in _correctness(fresh):
        if not ok:
            failures.append(f"{path}: {label} is false "
                            f"(correctness gate, no tolerance)")
    try:
        baseline = load_baseline(path, baseline_path)
    except BaselineUnavailable as exc:
        print(f"note: {exc}; skipping throughput gate for {path}")
        return failures
    fresh_metrics = _metrics(fresh)
    base_metrics = _metrics(baseline)
    compared = 0
    for label in sorted(base_metrics):
        base = base_metrics[label]
        if base <= 0 or label not in fresh_metrics:
            continue
        value = fresh_metrics[label]
        compared += 1
        if _lower_is_better(label):
            # Wider headroom upward: 1/(1-tol) mirrors the throughput
            # floor, so p99 gating trips at the same relative slowdown.
            ceil = base / (1.0 - tolerance)
            status = "ok" if value <= ceil else "FAIL"
            print(f"{path}: {label}  fresh={value:,.6f}  "
                  f"baseline={base:,.6f}  ceiling={ceil:,.6f}  "
                  f"[{status}]")
            if value > ceil:
                failures.append(
                    f"{path}: {label} regressed: {value:,.6f} > "
                    f"{ceil:,.6f} (baseline {base:,.6f}, "
                    f"tolerance {tolerance:.0%})")
            continue
        floor = base * (1.0 - tolerance)
        status = "ok" if value >= floor else "FAIL"
        print(f"{path}: {label}  fresh={value:,.1f}  "
              f"baseline={base:,.1f}  floor={floor:,.1f}  [{status}]")
        if value < floor:
            failures.append(
                f"{path}: {label} regressed: {value:,.1f} < "
                f"{floor:,.1f} (baseline {base:,.1f}, "
                f"tolerance {tolerance:.0%})")
    if not compared:
        print(f"note: {path}: no comparable metrics found")
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_bench",
        description="Fail when fresh bench results regressed past a "
                    "tolerance band vs the committed baselines.")
    parser.add_argument("files", nargs="+",
                        help="fresh bench JSON file(s) to check")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare against this file instead of "
                             "HEAD's copy (single-file runs only)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop below baseline "
                             f"(default {DEFAULT_TOLERANCE})")
    args = parser.parse_args(argv)
    if args.baseline is not None and len(args.files) != 1:
        parser.error("--baseline only applies to a single file")
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    failures: list[str] = []
    for path in args.files:
        try:
            failures.extend(check_file(path, args.baseline,
                                       args.tolerance))
        except (OSError, ValueError) as exc:
            failures.append(f"{path}: unreadable: {exc}")
    if failures:
        print("bench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
